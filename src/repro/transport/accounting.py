"""Per-link traffic accounting.

Table 1 of the paper reports wall-clock simulation times whose remote
configurations are dominated by network cost.  Because this reproduction
runs on one machine, the network component of wall time is *modelled*: each
message crossing a link is charged ``latency + size/bandwidth`` against
that link, and experiments report measured CPU time plus the accumulated
link time (see DESIGN.md, substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..observability import NULL_TELEMETRY
from .latency import SAME_HOST, LatencyModel


@dataclass
class LinkStats:
    """Accumulated traffic over one directed link."""

    model: LatencyModel
    messages: int = 0
    bytes: int = 0
    #: Wire frames carrying those messages.  Without batching every
    #: message is its own frame; a batch frame carries many.
    frames: int = 0
    #: Total modelled wall-clock time spent on the wire, assuming the
    #: communication is serialised (conservative, like the paper's setup
    #: where the simulator blocks on channel traffic).
    delay: float = 0.0

    def record(self, size: int) -> float:
        d = self.model.delay(size, seq=self.messages)
        self.messages += 1
        self.frames += 1
        self.bytes += size
        self.delay += d
        return d

    def record_frame(self, size: int, messages: int) -> float:
        """Charge one batch frame carrying ``messages`` logical messages.

        The latency model is consulted once — per frame, not per message —
        which is precisely the saving batching buys."""
        d = self.model.delay(size, seq=self.frames)
        self.messages += messages
        self.frames += 1
        self.bytes += size
        self.delay += d
        return d


class NetworkAccounting:
    """Traffic accounting across every directed link of a Pia system."""

    def __init__(self, default_model: LatencyModel = SAME_HOST) -> None:
        self.default_model = default_model
        self._models: Dict[Tuple[str, str], LatencyModel] = {}
        self.links: Dict[Tuple[str, str], LinkStats] = {}
        #: Telemetry sink; every recorded message also feeds the global
        #: and per-link counters of the observability registry.
        self.telemetry = NULL_TELEMETRY
        #: Optional :class:`~repro.observability.health.LinkHealthMonitor`.
        #: record()/record_frame() are the universal send boundary — every
        #: transport and the batched path funnel through them — so one
        #: hook here feeds the per-link estimators in every mode.  Pay
        #: for use: ``None`` costs one attribute read per frame.
        self.health = None

    def set_model(self, src: str, dst: str, model: LatencyModel,
                  *, both_ways: bool = True) -> None:
        self._models[(src, dst)] = model
        if both_ways:
            self._models[(dst, src)] = model

    def model_for(self, src: str, dst: str) -> LatencyModel:
        return self._models.get((src, dst), self.default_model)

    def _stats(self, src: str, dst: str) -> LinkStats:
        key = (src, dst)
        stats = self.links.get(key)
        if stats is None:
            stats = self.links[key] = LinkStats(self.model_for(src, dst))
        return stats

    def record(self, src: str, dst: str, size: int) -> float:
        """Charge one message (its own wire frame); returns its delay."""
        stats = self._stats(src, dst)
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.count("transport.messages")
            telemetry.count("transport.bytes", size)
            telemetry.count("transport.frames_sent")
            telemetry.count("transport.bytes_on_wire", size)
            telemetry.count(f"link.{src}->{dst}.messages")
            telemetry.count(f"link.{src}->{dst}.bytes", size)
        delay = stats.record(size)
        health = self.health
        if health is not None:
            health.on_send(src, dst, size, 1, delay)
        return delay

    def record_frame(self, src: str, dst: str, size: int,
                     messages: int) -> float:
        """Charge one batch frame of ``messages`` coalesced messages."""
        stats = self._stats(src, dst)
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.count("transport.messages", messages)
            telemetry.count("transport.bytes", size)
            telemetry.count("transport.frames_sent")
            telemetry.count("transport.bytes_on_wire", size)
            if messages:
                # Grant-only push frames carry no data messages and would
                # only dilute the coalescing histogram.
                telemetry.observe("transport.batch_size", messages)
            telemetry.count(f"link.{src}->{dst}.messages", messages)
            telemetry.count(f"link.{src}->{dst}.bytes", size)
        delay = stats.record_frame(size, messages)
        health = self.health
        if health is not None:
            health.on_send(src, dst, size, messages, delay)
        return delay

    # ------------------------------------------------------------------
    @property
    def total_messages(self) -> int:
        return sum(s.messages for s in self.links.values())

    @property
    def total_bytes(self) -> int:
        return sum(s.bytes for s in self.links.values())

    @property
    def total_frames(self) -> int:
        return sum(s.frames for s in self.links.values())

    @property
    def total_delay(self) -> float:
        return sum(s.delay for s in self.links.values())

    def reset(self) -> None:
        self.links.clear()

    def report(self) -> list:
        """Rows of (src, dst, model, messages, bytes, delay, frames)."""
        return [
            (src, dst, stats.model.name, stats.messages, stats.bytes,
             stats.delay, stats.frames)
            for (src, dst), stats in sorted(self.links.items())
        ]
