"""Per-peer send queues for frame coalescing (the batched fast path).

With batching enabled, a transport does not put every message on the wire
as its own frame.  Messages bound for the same destination are queued per
directed link and shipped at the next *flush point* — the destination's
poll, a synchronous call crossing the link, or an executor round boundary
— as one :class:`~repro.transport.message.BatchFrame`: one pickle, one
``sendall``, one latency charge.  The paper's premise (section 2.2.2.1)
is that a geographically distributed backplane lives or dies by how few
synchronisation messages cross the wire; coalescing is the classic PDES
lever for exactly that.

Fault injection stays per *logical message*: the injector's decision is
rolled at enqueue time, in original send order, so per-link ordinals —
and therefore every seeded fault decision — are identical with batching
on or off.

The batcher itself is transport-agnostic bookkeeping: queues and
counters.  Delivery — frame assembly included — is the owning
transport's business.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from .message import Message


class SendBatcher:
    """Per-(src, dst) FIFO queues of messages awaiting a batch flush."""

    def __init__(self) -> None:
        self._queues: Dict[Tuple[str, str], List[Message]] = {}
        self._lock = threading.Lock()

    def enqueue(self, src: str, dst: str, message: Message) -> None:
        with self._lock:
            queue = self._queues.get((src, dst))
            if queue is None:
                queue = self._queues[(src, dst)] = []
            queue.append(message)

    def extend(self, src: str, dst: str, messages) -> None:
        with self._lock:
            queue = self._queues.get((src, dst))
            if queue is None:
                queue = self._queues[(src, dst)] = []
            queue.extend(messages)

    # ------------------------------------------------------------------
    def pending(self, name: Optional[str] = None) -> int:
        """Queued messages destined for ``name`` (or for anyone)."""
        with self._lock:
            if name is None:
                return sum(len(q) for q in self._queues.values())
            return sum(len(q) for (src, dst), q in self._queues.items()
                       if dst == name)

    def take(self, *, src: Optional[str] = None, dst: Optional[str] = None
             ) -> List[Tuple[Tuple[str, str], List[Message]]]:
        """Remove and return matching non-empty queues, sorted by link key
        (deterministic flush order)."""
        with self._lock:
            keys = [key for key, queue in self._queues.items()
                    if queue
                    and (src is None or key[0] == src)
                    and (dst is None or key[1] == dst)]
            keys.sort()
            return [(key, self._queues.pop(key)) for key in keys]

    def clear(self, name: Optional[str] = None) -> int:
        """Drop queued messages (rollback / node-removal support).

        With ``name``, drops only queues touching that node; returns the
        number of messages dropped."""
        with self._lock:
            if name is None:
                dropped = sum(len(q) for q in self._queues.values())
                self._queues.clear()
                return dropped
            dropped = 0
            for key in [k for k in self._queues if name in k]:
                dropped += len(self._queues.pop(key))
            return dropped
