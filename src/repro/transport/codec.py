"""Compact binary wire codec for Pia messages and batch frames.

Every frame the transports exchange used to be a full ``pickle.dumps``
of a :class:`~repro.transport.message.Message` (or
:class:`~repro.transport.message.BatchFrame`).  Pickle is general but
expensive both in CPU and in bytes: a SIGNAL frame carrying a couple of
short strings cost ~230 bytes of class metadata and memo machinery.
This module replaces it with a purpose-built binary format tuned for
the traffic Pia nodes actually exchange — small, highly regular
messages whose field values repeat heavily (node names, channel ids,
net names).

Frame layout::

    offset  size  field
    0       1     MAGIC (0xD1)   — never a valid pickle leading byte
    1       1     VERSION (1)    — mixed-version peers fail loudly
    2       1     frame type     — 0 = single message, 1 = batch frame
    3       ...   body

Message body::

    u8       kind code (enum definition order)
    u8       flags (1=channel, 2=request_id, 4=trace, 8=trace parent)
    strref   src
    strref   dst
    strref   channel            (iff flag 1)
    f64le    time
    uvarint  epoch
    uvarint  msg_id
    uvarint  request_id         (iff flag 2)
    strref   trace_id           (iff flag 4)
    strref   span               (iff flag 4)
    strref   parent             (iff flag 8)
    uvarint  hop                (iff flag 4)
    u8       payload tag, then the tag-specific payload body

Batch body::

    strref src, strref dst, uvarint epoch,
    uvarint n_messages, n message bodies,
    uvarint n_grants,   n message bodies

Strings are interned *per frame*: a ``strref`` is a uvarint that is
either ``(byte_length << 1) | 1`` followed by the UTF-8 bytes (first
occurrence — the string is appended to the frame's table) or
``(table_index << 1)`` (a back-reference).  A batch frame carrying 50
signals between the same pair of nodes therefore spells each name once.
The ISSUE sketched per-*connection* interning; frames are deliberately
self-contained instead, because the reliable-send path re-transmits an
already-encoded frame verbatim on a fresh connection after a failure —
any codec state shared across frames would desynchronise on exactly the
retry paths the fault plane exercises.

Typed payload tags cover the hot kinds (SIGNAL tuples, safe-time
counter pairs, safe-time request paths); everything else goes through a
compact tagged value encoding whose leaves fall back to pickle only for
objects the codec has no schema for (``FALLBACK`` tag / ``pickle``
value leaf) — so arbitrary user payloads still work, they just pay the
old price.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Dict, List, Optional, Tuple

from ..core.errors import TransportError
from .message import BatchFrame, Message, MessageKind

#: First byte of every codec frame.  Pickle frames start with 0x80
#: (the PROTO opcode), so a pre-codec peer is detected immediately.
MAGIC = 0xD1
#: Bumped on any incompatible layout change; decoders reject mismatches.
VERSION = 1

FRAME_MESSAGE = 0
FRAME_BATCH = 1

# --- payload tags --------------------------------------------------------
PAYLOAD_NONE = 0      # payload is None
PAYLOAD_SIGNAL = 1    # (subsystem, net, value) — channel signal traffic
PAYLOAD_COUNTS = 2    # (injected, forwarded)  — safe-time reply/grant
PAYLOAD_PATH = 3      # (requester, target, path tuple) — safe-time request
PAYLOAD_VALUE = 4     # tagged value encoding (containers, scalars, ...)
PAYLOAD_FALLBACK = 5  # pickled blob — objects the codec has no schema for

# --- value tags (inside PAYLOAD_VALUE / container items) -----------------
_V_NONE = 0
_V_TRUE = 1
_V_FALSE = 2
_V_INT = 3      # zigzag uvarint
_V_FLOAT = 4    # f64le
_V_STR = 5      # strref
_V_BYTES = 6    # uvarint length + bytes
_V_TUPLE = 7    # uvarint count + items
_V_LIST = 8     # uvarint count + items
_V_DICT = 9     # uvarint count + key/value pairs
_V_MESSAGE = 10  # nested message body (fault/spill envelopes)
_V_PICKLE = 11  # uvarint length + pickle blob (fallback leaf)

_F64 = struct.Struct("<d")
_pack_f64 = _F64.pack
_unpack_f64 = _F64.unpack_from
_dumps = pickle.dumps
_PICKLE_PROTO = pickle.HIGHEST_PROTOCOL

#: Message kinds by definition order; the wire carries the index
#: (``MessageKind.code``, stamped where the enum is defined).
_KINDS: Tuple[MessageKind, ...] = tuple(MessageKind)

_SIGNAL = MessageKind.SIGNAL
_SAFE_TIME_REQUEST = MessageKind.SAFE_TIME_REQUEST
_SAFE_TIME_REPLY = MessageKind.SAFE_TIME_REPLY
_SAFE_TIME_GRANT = MessageKind.SAFE_TIME_GRANT


# ------------------------------------------------------------------------
# encoding
# ------------------------------------------------------------------------

def _put_uvarint_py(out: bytearray, value: int) -> None:
    """LEB128 unsigned varint, capped at 64 bits.

    The cap is part of the wire contract: the decoder (both backends)
    rejects varints past 64 bits, so the encoder must never emit one —
    anything wider takes the pickle leaf instead.
    """
    if value < 0:
        raise TransportError(f"negative varint field: {value}")
    if value >> 64:
        raise TransportError(f"varint field exceeds 64 bits: {value}")
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _put_str_py(out: bytearray, s: str, strings: Dict[str, int]) -> None:
    """Interned string: back-reference or first-occurrence definition."""
    index = strings.get(s)
    if index is not None:
        _put_uvarint_py(out, index << 1)
        return
    data = s.encode("utf-8", "surrogatepass")
    _put_uvarint_py(out, (len(data) << 1) | 1)
    out += data
    strings[s] = len(strings)


def _put_value_py(out: bytearray, value: Any, strings: Dict[str, int]) -> None:
    t = type(value)
    if value is None:
        out.append(_V_NONE)
    elif t is bool:
        out.append(_V_TRUE if value else _V_FALSE)
    elif t is int and -(1 << 63) <= value < (1 << 63):
        out.append(_V_INT)
        # zigzag so small negatives stay small; ints beyond 64 bits take
        # the pickle leaf so the decoder can keep a strict varint cap
        _put_uvarint_py(out, (value << 1) if value >= 0
                        else ((-value) << 1) - 1)
    elif t is float:
        out.append(_V_FLOAT)
        out += _pack_f64(value)
    elif t is str:
        out.append(_V_STR)
        _put_str_py(out, value, strings)
    elif t is bytes:
        out.append(_V_BYTES)
        _put_uvarint_py(out, len(value))
        out += value
    elif t is tuple:
        out.append(_V_TUPLE)
        _put_uvarint_py(out, len(value))
        for item in value:
            _put_value_py(out, item, strings)
    elif t is list:
        out.append(_V_LIST)
        _put_uvarint_py(out, len(value))
        for item in value:
            _put_value_py(out, item, strings)
    elif t is dict:
        out.append(_V_DICT)
        _put_uvarint_py(out, len(value))
        for key, item in value.items():
            _put_value_py(out, key, strings)
            _put_value_py(out, item, strings)
    elif t is Message:
        out.append(_V_MESSAGE)
        _put_message(out, value, strings)
    else:
        # Subclasses of the above land here too: exact-type checks keep
        # round-trips type-faithful (a bool-valued IntEnum stays itself).
        out.append(_V_PICKLE)
        blob = _dumps(value, protocol=_PICKLE_PROTO)
        _put_uvarint_py(out, len(blob))
        out += blob


def _put_payload(out: bytearray, message: Message,
                 strings: Dict[str, int]) -> None:
    payload = message.payload
    if payload is None:
        out.append(PAYLOAD_NONE)
        return
    kind = message.kind
    if type(payload) is tuple:
        if (kind is _SIGNAL and len(payload) == 3
                and type(payload[0]) is str and type(payload[1]) is str):
            out.append(PAYLOAD_SIGNAL)
            _put_str(out, payload[0], strings)
            _put_str(out, payload[1], strings)
            _put_value(out, payload[2], strings)
            return
        if ((kind is _SAFE_TIME_REPLY or kind is _SAFE_TIME_GRANT)
                and len(payload) == 2
                and type(payload[0]) is int and type(payload[1]) is int
                and payload[0] >= 0 and payload[1] >= 0):
            out.append(PAYLOAD_COUNTS)
            _put_uvarint(out, payload[0])
            _put_uvarint(out, payload[1])
            return
        if (kind is _SAFE_TIME_REQUEST and len(payload) == 3
                and type(payload[0]) is str and type(payload[1]) is str
                and type(payload[2]) is tuple
                and all(type(hop) is str for hop in payload[2])):
            out.append(PAYLOAD_PATH)
            _put_str(out, payload[0], strings)
            _put_str(out, payload[1], strings)
            _put_uvarint(out, len(payload[2]))
            for hop in payload[2]:
                _put_str(out, hop, strings)
            return
    if type(payload) in (bool, int, float, str, bytes, tuple, list, dict):
        out.append(PAYLOAD_VALUE)
        _put_value(out, payload, strings)
        return
    out.append(PAYLOAD_FALLBACK)
    blob = _dumps(payload, protocol=_PICKLE_PROTO)
    _put_uvarint(out, len(blob))
    out += blob


def _put_message(out: bytearray, message: Message,
                 strings: Dict[str, int]) -> None:
    try:
        code = message.kind.code
    except AttributeError:
        raise TransportError(
            f"unknown message kind {message.kind!r}") from None
    channel = message.channel
    request_id = message.request_id
    trace = message.trace
    flags = 0
    if channel is not None:
        flags |= 1
    if request_id is not None:
        flags |= 2
    if trace is not None:
        flags |= 4
        if trace[2] is not None:
            flags |= 8
    out.append(code)
    out.append(flags)
    _put_str(out, message.src, strings)
    _put_str(out, message.dst, strings)
    if channel is not None:
        _put_str(out, channel, strings)
    out += _pack_f64(message.time)
    _put_uvarint(out, message.epoch)
    _put_uvarint(out, message.msg_id)
    if request_id is not None:
        _put_uvarint(out, request_id)
    if trace is not None:
        _put_str(out, trace[0], strings)
        _put_str(out, trace[1], strings)
        if trace[2] is not None:
            _put_str(out, trace[2], strings)
        _put_uvarint(out, trace[3])
    _put_payload(out, message, strings)


def encode(message: Message) -> bytes:
    """Serialise one message into a self-contained codec frame."""
    out = bytearray((MAGIC, VERSION, FRAME_MESSAGE))
    try:
        _put_message(out, message, {})
    except TransportError:
        raise
    except Exception as exc:
        raise TransportError(f"cannot serialise {message.kind}: {exc}") from exc
    return bytes(out)


def encode_batch(frame: BatchFrame) -> bytes:
    """Serialise a whole batch frame with one shared string table."""
    out = bytearray((MAGIC, VERSION, FRAME_BATCH))
    strings: Dict[str, int] = {}
    try:
        _put_str(out, frame.src, strings)
        _put_str(out, frame.dst, strings)
        _put_uvarint(out, frame.epoch)
        _put_uvarint(out, len(frame.messages))
        for member in frame.messages:
            _put_message(out, member, strings)
        _put_uvarint(out, len(frame.grants))
        for grant in frame.grants:
            _put_message(out, grant, strings)
    except TransportError:
        raise
    except Exception as exc:
        raise TransportError(
            f"cannot serialise batch {frame.src}->{frame.dst}: {exc}"
        ) from exc
    return bytes(out)


def wire_size(message: Message) -> int:
    """Bytes this message occupies on the wire."""
    return len(encode(message))


# ------------------------------------------------------------------------
# decoding
# ------------------------------------------------------------------------

class _PyReader:
    """Cursor over one frame; every read is bounds-checked so a
    truncated or corrupt frame surfaces as :class:`TransportError`."""

    __slots__ = ("buf", "pos", "end", "strings")

    def __init__(self, blob: bytes, pos: int = 0) -> None:
        self.buf = blob
        self.pos = pos
        self.end = len(blob)
        self.strings: List[str] = []

    def fail(self, what: str) -> "TransportError":
        return TransportError(
            f"corrupt codec frame: {what} at offset {self.pos}")

    def u8(self) -> int:
        pos = self.pos
        if pos >= self.end:
            raise self.fail("truncated field (1 bytes wanted)")
        self.pos = pos + 1
        return self.buf[pos]

    def uvarint(self) -> int:
        buf, pos, end = self.buf, self.pos, self.end
        result = 0
        shift = 0
        while True:
            if pos >= end:
                raise self.fail("truncated varint")
            byte = buf[pos]
            pos += 1
            # Strict 64-bit cap (the native decoder works in uint64):
            # at shift 63 only the low payload bit may be set, and no
            # continuation may follow.
            if shift == 63 and byte & 0x7E:
                raise self.fail("varint overflow")
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > 63:
                raise self.fail("varint overflow")
        self.pos = pos
        return result

    def count(self) -> int:
        """A container/item count.  Every counted item occupies at least
        one byte, so a count exceeding the remaining bytes is corruption
        — rejecting it here keeps a corrupt varint from spinning the
        decoder through billions of phantom zero-byte items."""
        n = self.uvarint()
        if n > self.end - self.pos:
            raise self.fail(f"count {n} exceeds remaining frame")
        return n

    def take(self, n: int) -> bytes:
        pos = self.pos
        if pos + n > self.end:
            raise self.fail(f"truncated field ({n} bytes wanted)")
        self.pos = pos + n
        return self.buf[pos:pos + n]

    def f64(self) -> float:
        pos = self.pos
        if pos + 8 > self.end:
            raise self.fail("truncated float")
        self.pos = pos + 8
        return _unpack_f64(self.buf, pos)[0]

    def strref(self) -> str:
        ref = self.uvarint()
        if ref & 1:
            data = self.take(ref >> 1)
            try:
                s = data.decode("utf-8", "surrogatepass")
            except Exception:
                raise self.fail("undecodable string") from None
            self.strings.append(s)
            return s
        index = ref >> 1
        strings = self.strings
        if index >= len(strings):
            raise self.fail(f"string back-reference {index} out of range")
        return strings[index]

    def value(self) -> Any:
        tag = self.u8()
        if tag == _V_NONE:
            return None
        if tag == _V_TRUE:
            return True
        if tag == _V_FALSE:
            return False
        if tag == _V_INT:
            z = self.uvarint()
            return (z >> 1) ^ -(z & 1)
        if tag == _V_FLOAT:
            return self.f64()
        if tag == _V_STR:
            return self.strref()
        if tag == _V_BYTES:
            return self.take(self.uvarint())
        if tag == _V_TUPLE:
            return tuple(self.value() for _ in range(self.count()))
        if tag == _V_LIST:
            return [self.value() for _ in range(self.count())]
        if tag == _V_DICT:
            return {self.value(): self.value()
                    for _ in range(self.count())}
        if tag == _V_MESSAGE:
            return _read_message(self)
        if tag == _V_PICKLE:
            return self.pickled()
        raise self.fail(f"unknown value tag {tag}")

    def pickled(self) -> Any:
        blob = self.take(self.uvarint())
        try:
            return pickle.loads(blob)
        except Exception as exc:
            raise TransportError(
                f"cannot deserialise fallback payload: {exc}") from exc

    def done(self) -> None:
        if self.pos != self.end:
            raise TransportError(
                f"corrupt codec frame: {self.end - self.pos} trailing bytes")


# Message/payload/batch assembly lives at module level, shared verbatim
# by both reader backends: the native Reader implements only the
# primitives (u8/uvarint/count/take/f64/strref/value/pickled), and its
# ``value()`` re-enters :func:`_read_message` for nested messages via
# the ``codec_bind`` hook.

def _read_payload(r, kind: MessageKind) -> Any:
    tag = r.u8()
    if tag == PAYLOAD_NONE:
        return None
    if tag == PAYLOAD_SIGNAL:
        return (r.strref(), r.strref(), r.value())
    if tag == PAYLOAD_COUNTS:
        return (r.uvarint(), r.uvarint())
    if tag == PAYLOAD_PATH:
        requester = r.strref()
        target = r.strref()
        path = tuple(r.strref() for _ in range(r.count()))
        return (requester, target, path)
    if tag == PAYLOAD_VALUE:
        return r.value()
    if tag == PAYLOAD_FALLBACK:
        return r.pickled()
    raise r.fail(f"unknown payload tag {tag} for {kind.value}")


def _read_message(r) -> Message:
    code = r.u8()
    if code >= len(_KINDS):
        raise r.fail(f"unknown message kind code {code}")
    kind = _KINDS[code]
    flags = r.u8()
    src = r.strref()
    dst = r.strref()
    channel = r.strref() if flags & 1 else None
    time = r.f64()
    epoch = r.uvarint()
    msg_id = r.uvarint()
    request_id = r.uvarint() if flags & 2 else None
    trace: Optional[tuple] = None
    if flags & 4:
        trace_id = r.strref()
        span = r.strref()
        parent = r.strref() if flags & 8 else None
        trace = (trace_id, span, parent, r.uvarint())
    payload = _read_payload(r, kind)
    return Message(kind, src, dst, channel, time, payload,
                   request_id, msg_id, trace, epoch)


def _read_batch(r) -> BatchFrame:
    src = r.strref()
    dst = r.strref()
    epoch = r.uvarint()
    messages = [_read_message(r) for _ in range(r.count())]
    grants = [_read_message(r) for _ in range(r.count())]
    return BatchFrame(src, dst, messages, grants, epoch)


# ------------------------------------------------------------------------
# backend selection
# ------------------------------------------------------------------------
# The unsuffixed names below are what the encode/decode paths actually
# call; they bind to the C primitives when the native hot core is
# importable (and ``PIA_PURE`` is unset), and to the pure definitions
# otherwise.  The ``_py`` names always stay importable so the
# differential test suite can compare backends byte for byte.

from .. import _native  # noqa: E402

if _native.core is not None:
    _put_uvarint = _native.core.put_uvarint
    _put_str = _native.core.put_str
    _put_value = _native.core.put_value
    _Reader = _native.core.Reader
    _native.core.codec_bind(Message, _put_message, _read_message)
else:
    _put_uvarint = _put_uvarint_py
    _put_str = _put_str_py
    _put_value = _put_value_py
    _Reader = _PyReader


def _open(blob: bytes) -> "_Reader":
    if not blob:
        raise TransportError("cannot deserialise frame: empty")
    lead = blob[0]
    if lead != MAGIC:
        if lead == 0x80:
            raise TransportError(
                "refusing pickle wire frame: peer predates the binary "
                "codec (mixed-version run)")
        raise TransportError(
            f"cannot deserialise frame: unrecognised leading byte "
            f"{lead:#04x}")
    if len(blob) < 3:
        raise TransportError("cannot deserialise frame: truncated header")
    if blob[1] != VERSION:
        raise TransportError(
            f"codec version mismatch: frame is v{blob[1]}, this node "
            f"speaks v{VERSION} — upgrade all peers together")
    return _Reader(blob, 3)


def decode(blob: bytes) -> Message:
    """Decode a frame that must contain a single message."""
    reader = _open(blob)
    if blob[2] != FRAME_MESSAGE:
        raise TransportError(
            f"expected a message frame, got frame type {blob[2]}")
    message = _read_message(reader)
    reader.done()
    return message


def decode_any(blob: bytes):
    """Decode a wire frame: a single :class:`Message` or a
    :class:`BatchFrame`."""
    reader = _open(blob)
    frame_type = blob[2]
    if frame_type == FRAME_MESSAGE:
        decoded: Any = _read_message(reader)
    elif frame_type == FRAME_BATCH:
        decoded = _read_batch(reader)
    else:
        raise TransportError(f"unknown frame type {frame_type}")
    reader.done()
    return decoded
