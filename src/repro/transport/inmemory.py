"""The deterministic in-memory transport.

Carries :class:`~repro.transport.message.Message` objects between Pia
nodes living in one process, preserving the properties Pia gets from RMI:
FIFO ordering per directed link, synchronous request/response calls, and
(simulated) serialisation — messages are deep-copied through an encode/
decode cycle so nodes cannot share mutable state by accident, exactly as
if they had crossed a real wire.

Every message is charged against :class:`NetworkAccounting`, which is how
the "geographically distributed" experiments obtain their modelled network
cost while the whole simulation runs deterministically in one process.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from ..core.errors import TransportError
from ..core.fastcopy import is_immutable
from ..observability import NULL_TELEMETRY, TraceKind
from ..observability.spans import ensure_context, span_details
from .accounting import NetworkAccounting
from .batch import SendBatcher
from .codec import decode, encode, encode_batch
from .latency import SAME_HOST, LatencyModel
from .message import BatchFrame, Message, MessageKind

#: Handles an asynchronous message.
InboxHandler = Callable[[Message], None]
#: Handles a synchronous call, returning the reply message.
CallHandler = Callable[[Message], Message]


class InMemoryTransport:
    """FIFO message passing between registered nodes, with accounting."""

    def __init__(self, *, default_model: LatencyModel = SAME_HOST,
                 simulate_wire: bool = True,
                 batching: bool = False) -> None:
        self.accounting = NetworkAccounting(default_model)
        #: Encode/decode every message to emulate crossing the wire.
        self.simulate_wire = simulate_wire
        #: Coalesce per-destination sends into batch frames (opt-in).
        self.batching = batching
        self.batcher = SendBatcher()
        #: ``(src, dst) -> [Message]`` hook filled by an executor: extra
        #: safe-time grants to piggyback on an outgoing batch frame.
        self.piggyback_provider = None
        #: Per-transport-instance message id stream (stamped at the send
        #: boundary).  Instance-local rather than module-global so a
        #: forked child — which inherits a *copy* of this transport —
        #: cannot interleave with the parent's stream, matching the PID
        #: guard discipline of the TCP transport.
        self._msg_ids = itertools.count(1)
        self._inboxes: Dict[str, deque] = {}
        self._call_handlers: Dict[str, CallHandler] = {}
        #: Telemetry sink (attach via :meth:`attach_telemetry`).
        self.telemetry = NULL_TELEMETRY
        #: Fault plane (attach via :meth:`attach_faults`).
        self.fault_injector = None

    def set_piggyback_provider(self, provider) -> None:
        """Install the executor's grant source for batch flushes."""
        self.piggyback_provider = provider

    def attach_telemetry(self, telemetry) -> None:
        """Feed message traces and per-link counters to ``telemetry``."""
        self.telemetry = telemetry
        self.accounting.telemetry = telemetry
        if self.fault_injector is not None:
            self.fault_injector.telemetry = telemetry

    def attach_faults(self, injector) -> None:
        """Route every send/poll through ``injector``'s fault plane."""
        self.fault_injector = injector
        injector.telemetry = self.telemetry

    def attach_health(self, monitor) -> None:
        """Feed per-link health estimators from the send/poll boundary."""
        self.accounting.health = monitor

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, name: str,
                 call_handler: Optional[CallHandler] = None) -> None:
        if name in self._inboxes:
            raise TransportError(f"node {name!r} already registered")
        self._inboxes[name] = deque()
        if call_handler is not None:
            self._call_handlers[name] = call_handler

    def unregister(self, name: str) -> None:
        self._inboxes.pop(name, None)
        self._call_handlers.pop(name, None)
        self.batcher.clear(name)

    def nodes(self) -> list:
        return sorted(self._inboxes)

    def set_link(self, a: str, b: str, model: LatencyModel) -> None:
        """Configure the latency model between two nodes (both ways)."""
        self.accounting.set_model(a, b, model)

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def _through_wire(self, message: Message) -> Tuple[Message, int]:
        blob = encode(message)
        if self.simulate_wire:
            return decode(blob), len(blob)
        return message, len(blob)

    def send(self, message: Message) -> float:
        """Queue ``message`` for its destination; returns the wire delay.

        With a fault plane attached, the injector decides the message's
        fate first: injected drops are retried internally (raising
        :class:`~repro.core.errors.LinkDown` once the budget is spent),
        delayed/reordered messages are parked with the injector and
        released at :meth:`poll`, duplicates are queued twice and
        deduplicated at the poll boundary, and traffic touching a
        crashed node is swallowed (``lost``).
        """
        if message.msg_id == 0:
            message.msg_id = next(self._msg_ids)
        telemetry = self.telemetry
        if telemetry.enabled:
            # Mint before the fault plane decides the message's fate, so
            # every copy (duplicate, delayed, retried) shares one span
            # and the ordinal stream is identical across transports.
            ensure_context(telemetry, message)
        injector = self.fault_injector
        action, ticks = "deliver", 0
        if injector is not None:
            action, ticks = injector.on_send(message)
            if action == "lost":
                return 0.0
        if message.dst not in self._inboxes:
            raise TransportError(f"unknown destination node {message.dst!r}")
        if self.batching and action in ("deliver", "duplicate"):
            return self._enqueue_batched(message, action, injector)
        delivered, size = self._through_wire(message)
        delay = self.accounting.record(message.src, message.dst, size)
        if telemetry.enabled:
            telemetry.trace(TraceKind.MSG_SEND, time=message.time,
                            subject=f"{message.src}->{message.dst}",
                            message_kind=message.kind.value, bytes=size,
                            **span_details(message.trace))
        if action == "delay":
            injector.hold(message.dst, delivered, ticks)
            return delay
        if action == "reorder":
            injector.hold_swap(message.src, message.dst, delivered)
            return delay
        inbox = self._inboxes[message.dst]
        inbox.append(delivered)
        if action == "duplicate":
            extra, extra_size = self._through_wire(message)
            self.accounting.record(message.src, message.dst, extra_size)
            inbox.append(extra)
            injector.expect_duplicate(message.dst, delivered.msg_id,
                                      src=delivered.src)
        if injector is not None:
            for late in injector.take_swaps(message.src, message.dst):
                inbox.append(late)
        return delay

    def _enqueue_batched(self, message: Message, action: str,
                         injector) -> float:
        """Queue a deliver/duplicate-fated message for the next flush.

        Immutable payloads skip the simulated encode/decode round trip —
        sharing an immutable object is indistinguishable from copying it —
        which is the transport half of the copy-elision fast path.  The
        whole frame is pickled once at flush time either way, so byte
        accounting stays honest.
        """
        if self.simulate_wire and not is_immutable(message.payload):
            member = decode(encode(message))
        else:
            member = message
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.trace(TraceKind.MSG_SEND, time=message.time,
                            subject=f"{message.src}->{message.dst}",
                            message_kind=message.kind.value, batched=True,
                            **span_details(message.trace))
        self.batcher.enqueue(message.src, message.dst, member)
        if action == "duplicate":
            self.batcher.enqueue(message.src, message.dst, member)
            injector.expect_duplicate(message.dst, member.msg_id,
                                       src=member.src)
        if injector is not None:
            late = injector.take_swaps(message.src, message.dst)
            if late:
                self.batcher.extend(message.src, message.dst, late)
        return 0.0

    def flush_batches(self, *, src: Optional[str] = None,
                      dst: Optional[str] = None) -> int:
        """Ship matching queued batches: one frame (and one latency
        charge) per non-empty link, members delivered in send order,
        piggybacked grants strictly after them.  Returns the number of
        logical messages flushed."""
        if not self.batching:
            return 0
        flushed = 0
        provider = self.piggyback_provider
        telemetry = self.telemetry
        for (s, d), members in self.batcher.take(src=src, dst=dst):
            inbox = self._inboxes.get(d)
            if inbox is None:
                continue    # destination unregistered after enqueue
            grants = provider(s, d) if provider is not None else []
            blob = encode_batch(BatchFrame(s, d, members, grants))
            self.accounting.record_frame(s, d, len(blob), len(members))
            if telemetry.enabled and grants:
                telemetry.count("safetime.piggyback_sent", len(grants))
            inbox.extend(members)
            inbox.extend(grants)
            flushed += len(members)
        return flushed

    def push_grants(self, src: str, dst: str,
                    grants: List[Message]) -> bool:
        """Ship a standalone grant-only frame ``src``→``dst``.

        One frame unblocks a peer known to be stalled, replacing the
        two-frame request/reply round trip it would otherwise issue.
        Grants bypass the fault plane (like call traffic: sync-protocol
        messages are not subject to data-plane faults).
        """
        if not self.batching or not grants:
            return False
        inbox = self._inboxes.get(dst)
        if inbox is None:
            return False
        blob = encode_batch(BatchFrame(src, dst, [], list(grants)))
        self.accounting.record_frame(src, dst, len(blob), 0)
        inbox.extend(grants)
        return True

    def call(self, message: Message) -> Message:
        """Synchronous request/response (the RMI analogue).

        The destination's call handler runs inline; both directions are
        charged to accounting.  Calls cannot reach a crashed node.
        """
        if message.msg_id == 0:
            message.msg_id = next(self._msg_ids)
        telemetry = self.telemetry
        if telemetry.enabled:
            ensure_context(telemetry, message)
        if self.fault_injector is not None:
            self.fault_injector.check_call(message)
        if self.batching:
            # A call is a synchronisation point on this link: anything
            # queued either way must land first so in-flight counts match
            # the unbatched run exactly.
            self.flush_batches(src=message.src, dst=message.dst)
            self.flush_batches(src=message.dst, dst=message.src)
        handler = self._call_handlers.get(message.dst)
        if handler is None:
            raise TransportError(
                f"node {message.dst!r} accepts no calls "
                f"(registered: {sorted(self._call_handlers)})")
        request, req_size = self._through_wire(message)
        self.accounting.record(message.src, message.dst, req_size)
        if telemetry.enabled:
            telemetry.trace(TraceKind.MSG_SEND, time=message.time,
                            subject=f"{message.src}->{message.dst}",
                            message_kind=message.kind.value, bytes=req_size,
                            call=True, **span_details(message.trace))
        reply = handler(request)
        if not isinstance(reply, Message):
            raise TransportError(
                f"call handler of {message.dst!r} returned "
                f"{type(reply).__name__}, not Message")
        response, resp_size = self._through_wire(reply)
        self.accounting.record(message.dst, message.src, resp_size)
        if telemetry.enabled:
            telemetry.trace(TraceKind.MSG_RECV, time=reply.time,
                            subject=f"{message.dst}->{message.src}",
                            message_kind=reply.kind.value, bytes=resp_size,
                            call=True, **span_details(reply.trace))
        return response

    def poll(self, name: str, *, limit: Optional[int] = None) -> List[Message]:
        """Drain (up to ``limit``) queued messages for node ``name``."""
        try:
            inbox = self._inboxes[name]
        except KeyError:
            raise TransportError(f"unknown node {name!r}") from None
        if self.batching:
            # Poll is the flush point: every queue bound for this node
            # ships now, so delivery lands at the same pump points as the
            # unbatched per-message path.
            self.flush_batches(dst=name)
        injector = self.fault_injector
        if injector is not None:
            inbox.extend(injector.release_due(name))
        drained: List[Message] = []
        while inbox and (limit is None or len(drained) < limit):
            message = inbox.popleft()
            if injector is not None and \
                    injector.suppress_duplicate(name, message):
                continue
            drained.append(message)
        health = self.accounting.health
        if health is not None:
            health.on_poll(name, len(drained))
        telemetry = self.telemetry
        if telemetry.enabled and drained:
            for message in drained:
                telemetry.trace(TraceKind.MSG_RECV, time=message.time,
                                subject=f"{message.src}->{message.dst}",
                                message_kind=message.kind.value,
                                **span_details(message.trace))
        return drained

    def pending(self, name: Optional[str] = None) -> int:
        """Messages queued for ``name`` (or for every node), the fault
        plane's parked deliveries included."""
        held = self.batcher.pending(name)
        if self.fault_injector is not None:
            held += self.fault_injector.held_pending(name)
        if name is not None:
            return len(self._inboxes.get(name, ())) + held
        return sum(len(q) for q in self._inboxes.values()) + held

    def flush(self) -> int:
        """Drop every undelivered message (optimistic rollback support)."""
        dropped = sum(len(q) for q in self._inboxes.values())
        for inbox in self._inboxes.values():
            inbox.clear()
        dropped += self.batcher.clear()
        if self.fault_injector is not None:
            dropped += self.fault_injector.flush()
        return dropped

    def drop_if(self, predicate: Callable[[Message], bool]) -> int:
        """Drop queued messages matching ``predicate``; returns the count."""
        dropped = 0
        for name, inbox in self._inboxes.items():
            kept = [m for m in inbox if not predicate(m)]
            dropped += len(inbox) - len(kept)
            inbox.clear()
            inbox.extend(kept)
        return dropped
