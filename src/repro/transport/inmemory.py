"""The deterministic in-memory transport.

Carries :class:`~repro.transport.message.Message` objects between Pia
nodes living in one process, preserving the properties Pia gets from RMI:
FIFO ordering per directed link, synchronous request/response calls, and
(simulated) serialisation — messages are deep-copied through an encode/
decode cycle so nodes cannot share mutable state by accident, exactly as
if they had crossed a real wire.

Every message is charged against :class:`NetworkAccounting`, which is how
the "geographically distributed" experiments obtain their modelled network
cost while the whole simulation runs deterministically in one process.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from ..core.errors import TransportError
from ..observability import NULL_TELEMETRY, TraceKind
from .accounting import NetworkAccounting
from .latency import SAME_HOST, LatencyModel
from .message import Message, MessageKind, decode, encode

#: Handles an asynchronous message.
InboxHandler = Callable[[Message], None]
#: Handles a synchronous call, returning the reply message.
CallHandler = Callable[[Message], Message]


class InMemoryTransport:
    """FIFO message passing between registered nodes, with accounting."""

    def __init__(self, *, default_model: LatencyModel = SAME_HOST,
                 simulate_wire: bool = True) -> None:
        self.accounting = NetworkAccounting(default_model)
        #: Encode/decode every message to emulate crossing the wire.
        self.simulate_wire = simulate_wire
        self._inboxes: Dict[str, deque] = {}
        self._call_handlers: Dict[str, CallHandler] = {}
        #: Telemetry sink (attach via :meth:`attach_telemetry`).
        self.telemetry = NULL_TELEMETRY
        #: Fault plane (attach via :meth:`attach_faults`).
        self.fault_injector = None

    def attach_telemetry(self, telemetry) -> None:
        """Feed message traces and per-link counters to ``telemetry``."""
        self.telemetry = telemetry
        self.accounting.telemetry = telemetry
        if self.fault_injector is not None:
            self.fault_injector.telemetry = telemetry

    def attach_faults(self, injector) -> None:
        """Route every send/poll through ``injector``'s fault plane."""
        self.fault_injector = injector
        injector.telemetry = self.telemetry

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, name: str,
                 call_handler: Optional[CallHandler] = None) -> None:
        if name in self._inboxes:
            raise TransportError(f"node {name!r} already registered")
        self._inboxes[name] = deque()
        if call_handler is not None:
            self._call_handlers[name] = call_handler

    def unregister(self, name: str) -> None:
        self._inboxes.pop(name, None)
        self._call_handlers.pop(name, None)

    def nodes(self) -> list:
        return sorted(self._inboxes)

    def set_link(self, a: str, b: str, model: LatencyModel) -> None:
        """Configure the latency model between two nodes (both ways)."""
        self.accounting.set_model(a, b, model)

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def _through_wire(self, message: Message) -> Tuple[Message, int]:
        blob = encode(message)
        if self.simulate_wire:
            return decode(blob), len(blob)
        return message, len(blob)

    def send(self, message: Message) -> float:
        """Queue ``message`` for its destination; returns the wire delay.

        With a fault plane attached, the injector decides the message's
        fate first: injected drops are retried internally (raising
        :class:`~repro.core.errors.LinkDown` once the budget is spent),
        delayed/reordered messages are parked with the injector and
        released at :meth:`poll`, duplicates are queued twice and
        deduplicated at the poll boundary, and traffic touching a
        crashed node is swallowed (``lost``).
        """
        injector = self.fault_injector
        action, ticks = "deliver", 0
        if injector is not None:
            action, ticks = injector.on_send(message)
            if action == "lost":
                return 0.0
        if message.dst not in self._inboxes:
            raise TransportError(f"unknown destination node {message.dst!r}")
        delivered, size = self._through_wire(message)
        delay = self.accounting.record(message.src, message.dst, size)
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.trace(TraceKind.MSG_SEND, time=message.time,
                            subject=f"{message.src}->{message.dst}",
                            message_kind=message.kind.value, bytes=size)
        if action == "delay":
            injector.hold(message.dst, delivered, ticks)
            return delay
        if action == "reorder":
            injector.hold_swap(message.src, message.dst, delivered)
            return delay
        inbox = self._inboxes[message.dst]
        inbox.append(delivered)
        if action == "duplicate":
            extra, extra_size = self._through_wire(message)
            self.accounting.record(message.src, message.dst, extra_size)
            inbox.append(extra)
            injector.expect_duplicate(message.dst, delivered.msg_id)
        if injector is not None:
            for late in injector.take_swaps(message.src, message.dst):
                inbox.append(late)
        return delay

    def call(self, message: Message) -> Message:
        """Synchronous request/response (the RMI analogue).

        The destination's call handler runs inline; both directions are
        charged to accounting.  Calls cannot reach a crashed node.
        """
        if self.fault_injector is not None:
            self.fault_injector.check_call(message)
        handler = self._call_handlers.get(message.dst)
        if handler is None:
            raise TransportError(
                f"node {message.dst!r} accepts no calls "
                f"(registered: {sorted(self._call_handlers)})")
        request, req_size = self._through_wire(message)
        self.accounting.record(message.src, message.dst, req_size)
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.trace(TraceKind.MSG_SEND, time=message.time,
                            subject=f"{message.src}->{message.dst}",
                            message_kind=message.kind.value, bytes=req_size,
                            call=True)
        reply = handler(request)
        if not isinstance(reply, Message):
            raise TransportError(
                f"call handler of {message.dst!r} returned "
                f"{type(reply).__name__}, not Message")
        response, resp_size = self._through_wire(reply)
        self.accounting.record(message.dst, message.src, resp_size)
        if telemetry.enabled:
            telemetry.trace(TraceKind.MSG_RECV, time=reply.time,
                            subject=f"{message.dst}->{message.src}",
                            message_kind=reply.kind.value, bytes=resp_size,
                            call=True)
        return response

    def poll(self, name: str, *, limit: Optional[int] = None) -> List[Message]:
        """Drain (up to ``limit``) queued messages for node ``name``."""
        try:
            inbox = self._inboxes[name]
        except KeyError:
            raise TransportError(f"unknown node {name!r}") from None
        injector = self.fault_injector
        if injector is not None:
            inbox.extend(injector.release_due(name))
        drained: List[Message] = []
        while inbox and (limit is None or len(drained) < limit):
            message = inbox.popleft()
            if injector is not None and \
                    injector.suppress_duplicate(name, message):
                continue
            drained.append(message)
        telemetry = self.telemetry
        if telemetry.enabled and drained:
            for message in drained:
                telemetry.trace(TraceKind.MSG_RECV, time=message.time,
                                subject=f"{message.src}->{message.dst}",
                                message_kind=message.kind.value)
        return drained

    def pending(self, name: Optional[str] = None) -> int:
        """Messages queued for ``name`` (or for every node), the fault
        plane's parked deliveries included."""
        held = 0
        if self.fault_injector is not None:
            held = self.fault_injector.held_pending(name)
        if name is not None:
            return len(self._inboxes.get(name, ())) + held
        return sum(len(q) for q in self._inboxes.values()) + held

    def flush(self) -> int:
        """Drop every undelivered message (optimistic rollback support)."""
        dropped = sum(len(q) for q in self._inboxes.values())
        for inbox in self._inboxes.values():
            inbox.clear()
        if self.fault_injector is not None:
            dropped += self.fault_injector.flush()
        return dropped

    def drop_if(self, predicate: Callable[[Message], bool]) -> int:
        """Drop queued messages matching ``predicate``; returns the count."""
        dropped = 0
        for name, inbox in self._inboxes.items():
            kept = [m for m in inbox if not predicate(m)]
            dropped += len(inbox) - len(kept)
            inbox.clear()
            inbox.extend(kept)
        return dropped
