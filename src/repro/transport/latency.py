"""Network latency/bandwidth models for the simulated Internet.

The paper's evaluation ran two Pia nodes "on Linux/Pentium Pro 200MHz
workstations, both on the same subnet", with the remote-operation numbers
dominated by per-message network overhead.  We model links as
``latency + size/bandwidth`` pipes; the accounting layer sums these to
yield the *modelled wall-clock* network component of each experiment
(DESIGN.md, substitutions table).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigurationError


@dataclass(frozen=True)
class LatencyModel:
    """A point-to-point link: fixed per-message latency plus serialisation."""

    name: str
    #: One-way per-message latency, in (wall) seconds.
    latency: float
    #: Bytes per second; ``inf`` means serialisation is free.
    bandwidth: float = float("inf")
    #: Deterministic jitter fraction applied per message (0 disables).
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ConfigurationError(f"{self.name}: negative latency")
        if self.bandwidth <= 0:
            raise ConfigurationError(f"{self.name}: bandwidth must be > 0")
        if not 0 <= self.jitter < 1:
            raise ConfigurationError(f"{self.name}: jitter must be in [0, 1)")

    def delay(self, size_bytes: int, *, seq: int = 0) -> float:
        """Wall-clock delay for one message of ``size_bytes``.

        Jitter is deterministic in ``seq`` (message ordinal) so runs are
        reproducible: it cycles through +/- ``jitter`` of the base delay.
        """
        base = self.latency + size_bytes / self.bandwidth
        if self.jitter:
            # A fixed 8-phase triangular pattern keeps results reproducible.
            phase = (seq % 8) / 7.0 * 2.0 - 1.0          # -1 .. +1
            base *= 1.0 + self.jitter * phase
        return base


#: Both subsystems in one process: communication is effectively free.
SAME_HOST = LatencyModel("same-host", latency=2e-6, bandwidth=400e6)

#: The paper's measurement setup: two workstations on one subnet
#: (10 Mbit/s Ethernet era: ~0.3 ms RTT/2, ~1.2 MB/s).
LAN = LatencyModel("lan", latency=3e-4, bandwidth=1.2e6)

#: A 1998 cross-country Internet path: ~35 ms one way, ~128 kB/s.
INTERNET = LatencyModel("internet", latency=35e-3, bandwidth=128e3)

#: A modern broadband WAN, for the ablation sweeps.
BROADBAND = LatencyModel("broadband", latency=8e-3, bandwidth=12.5e6)

PRESETS = {model.name: model for model in
           (SAME_HOST, LAN, INTERNET, BROADBAND)}


def preset(name: str) -> LatencyModel:
    try:
        return PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown latency preset {name!r} "
            f"(available: {sorted(PRESETS)})") from None
