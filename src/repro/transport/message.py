"""Wire messages between Pia nodes.

The paper interconnects nodes through Java RMI (section 2.2.1); the
properties Pia actually relies on are FIFO ordering per channel,
request/response calls (the safe-time protocol) and serialisation.  These
message types are the protocol-neutral representation both transports
(in-memory and TCP) carry.
"""

from __future__ import annotations

import enum
import itertools
import pickle
from dataclasses import dataclass, field
from typing import Any, Optional

from ..core.errors import TransportError


class MessageKind(enum.Enum):
    """What a message means to the receiving node."""

    #: A timestamped signal crossing a split net (channel traffic).
    SIGNAL = "signal"
    #: Safe-time request (conservative channels, paper section 2.2.2.1).
    SAFE_TIME_REQUEST = "safe-time-request"
    #: Safe-time response.
    SAFE_TIME_REPLY = "safe-time-reply"
    #: An unsolicited safe-time grant piggybacked on a batch frame
    #: (``time`` carries the grant, ``payload`` the peer's
    #: ``(injected, forwarded)`` counts).  Always safe to apply: a stale
    #: grant merely under-reports the peer's floor.
    SAFE_TIME_GRANT = "safe-time-grant"
    #: A Chandy-Lamport checkpoint mark (paper section 2.2.3).
    MARK = "mark"
    #: Coordinated restore command (optimistic recovery).
    RESTORE = "restore"
    #: Remote hardware server call / reply (paper section 2.3).
    HW_CALL = "hw-call"
    HW_REPLY = "hw-reply"
    #: Node management (attach, detach, shutdown).
    CONTROL = "control"


_msg_ids = itertools.count(1)


@dataclass
class Message:
    """One unit of inter-node communication."""

    kind: MessageKind
    src: str                       # source node name
    dst: str                       # destination node name
    channel: Optional[str] = None  # channel id for SIGNAL/MARK traffic
    #: Virtual time attached to the content (signal stamp, safe time...).
    time: float = 0.0
    payload: Any = None
    #: Correlates requests with replies.
    request_id: Optional[int] = None
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    #: Causal trace context ``(trace_id, span, parent, hop)`` minted by
    #: the sending transport when telemetry is enabled (see
    #: :mod:`repro.observability.spans`); ``None`` when tracing is off.
    trace: Optional[tuple] = None
    #: Migration epoch stamped by the sending transport.  Receivers drop
    #: frames from an older epoch: after a failover rolls the run back,
    #: stale traffic from the pre-failover world must not leak into the
    #: restored state (see :mod:`repro.distributed.migration`).
    epoch: int = 0

    def reply(self, kind: MessageKind, *, time: float = 0.0,
              payload: Any = None) -> "Message":
        """Build the response message for a request.

        The reply shares the request's trace context: a synchronous call
        and its response are one causal span.
        """
        return Message(kind=kind, src=self.dst, dst=self.src,
                       channel=self.channel, time=time, payload=payload,
                       request_id=self.request_id, trace=self.trace)


def encode(message: Message) -> bytes:
    """Serialise for the TCP transport (and for byte accounting)."""
    try:
        return pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise TransportError(f"cannot serialise {message.kind}: {exc}") from exc


def decode(blob: bytes) -> Message:
    try:
        message = pickle.loads(blob)
    except Exception as exc:
        raise TransportError(f"cannot deserialise message: {exc}") from exc
    if not isinstance(message, Message):
        raise TransportError(f"decoded object is {type(message).__name__}")
    return message


def wire_size(message: Message) -> int:
    """Bytes this message occupies on the wire."""
    return len(encode(message))


@dataclass
class BatchFrame:
    """One coalesced wire frame: every message a source queued for one
    destination during a scheduler round, in send order, plus any
    piggybacked safe-time grants (applied strictly after the data
    messages, so the receiver's injected counts are current)."""

    src: str
    dst: str
    messages: list
    grants: list = field(default_factory=list)
    #: Migration epoch of the sending transport at flush time (stale
    #: frames are dropped whole — every member shares the sender's world).
    epoch: int = 0

    def __len__(self) -> int:
        return len(self.messages) + len(self.grants)


def encode_batch(frame: BatchFrame) -> bytes:
    """Serialise a whole batch frame with a single pickle pass."""
    try:
        return pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise TransportError(
            f"cannot serialise batch {frame.src}->{frame.dst}: {exc}"
        ) from exc


def decode_any(blob: bytes):
    """Decode a wire frame: a single :class:`Message` or a
    :class:`BatchFrame`."""
    try:
        decoded = pickle.loads(blob)
    except Exception as exc:
        raise TransportError(f"cannot deserialise frame: {exc}") from exc
    if not isinstance(decoded, (Message, BatchFrame)):
        raise TransportError(f"decoded object is {type(decoded).__name__}")
    return decoded
