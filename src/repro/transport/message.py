"""Wire messages between Pia nodes.

The paper interconnects nodes through Java RMI (section 2.2.1); the
properties Pia actually relies on are FIFO ordering per channel,
request/response calls (the safe-time protocol) and serialisation.  These
message types are the protocol-neutral representation both transports
(in-memory and TCP) carry.

Serialisation itself lives in :mod:`repro.transport.codec` (a compact
binary format; see that module for the frame layout).  The ``encode`` /
``decode`` / ``encode_batch`` / ``decode_any`` names are re-exported
here for callers that predate the codec split — the transports import
the codec directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional


class MessageKind(enum.Enum):
    """What a message means to the receiving node.

    The binary codec carries a kind as its index in definition order, so
    new kinds must be appended (reordering is a wire-format break that
    requires bumping :data:`repro.transport.codec.VERSION`).
    """

    #: A timestamped signal crossing a split net (channel traffic).
    SIGNAL = "signal"
    #: Safe-time request (conservative channels, paper section 2.2.2.1).
    SAFE_TIME_REQUEST = "safe-time-request"
    #: Safe-time response.
    SAFE_TIME_REPLY = "safe-time-reply"
    #: An unsolicited safe-time grant piggybacked on a batch frame
    #: (``time`` carries the grant, ``payload`` the peer's
    #: ``(injected, forwarded)`` counts).  Always safe to apply: a stale
    #: grant merely under-reports the peer's floor.
    SAFE_TIME_GRANT = "safe-time-grant"
    #: A Chandy-Lamport checkpoint mark (paper section 2.2.3).
    MARK = "mark"
    #: Coordinated restore command (optimistic recovery).
    RESTORE = "restore"
    #: Remote hardware server call / reply (paper section 2.3).
    HW_CALL = "hw-call"
    HW_REPLY = "hw-reply"
    #: Node management (attach, detach, shutdown).
    CONTROL = "control"


# Dense per-member index: the codec carries ``kind.code`` as a single
# header byte, and reading it back as an attribute skips the Python-level
# ``Enum.__hash__`` a dict lookup would pay on every encoded message.
# ``untraced`` is likewise precomputed here because the span minter sits
# on the send hot path and ``Enum.value`` is a Python-level descriptor —
# the observability package defines the *set* (it cannot import the
# transports) and reads the flag back through the member.
from ..observability.spans import UNTRACED_KINDS as _UNTRACED_KINDS

for _index, _kind in enumerate(MessageKind):
    _kind.code = _index
    _kind.untraced = _kind.value in _UNTRACED_KINDS
del _index, _kind


@dataclass(slots=True)
class Message:
    """One unit of inter-node communication.

    Slotted: every signal crossing a channel allocates one of these, so
    dropping the per-instance ``__dict__`` measurably shrinks both the
    footprint and the construction cost of the messaging hot path.

    ``msg_id`` is 0 (unstamped) at construction; the sending transport
    stamps a per-transport-instance id at its send boundary.  Ids exist
    only to key duplicate suppression as ``(src, msg_id)``, so replies
    and piggybacked grants — which never enter the duplicate plane —
    legitimately travel unstamped.
    """

    kind: MessageKind
    src: str                       # source node name
    dst: str                       # destination node name
    channel: Optional[str] = None  # channel id for SIGNAL/MARK traffic
    #: Virtual time attached to the content (signal stamp, safe time...).
    time: float = 0.0
    payload: Any = None
    #: Correlates requests with replies.
    request_id: Optional[int] = None
    #: Per-transport send ordinal; 0 until the transport stamps it.
    msg_id: int = 0
    #: Causal trace context ``(trace_id, span, parent, hop)`` minted by
    #: the sending transport when telemetry is enabled (see
    #: :mod:`repro.observability.spans`); ``None`` when tracing is off.
    trace: Optional[tuple] = None
    #: Migration epoch stamped by the sending transport.  Receivers drop
    #: frames from an older epoch: after a failover rolls the run back,
    #: stale traffic from the pre-failover world must not leak into the
    #: restored state (see :mod:`repro.distributed.migration`).
    epoch: int = 0

    def reply(self, kind: MessageKind, *, time: float = 0.0,
              payload: Any = None) -> "Message":
        """Build the response message for a request.

        The reply shares the request's trace context: a synchronous call
        and its response are one causal span.
        """
        return Message(kind=kind, src=self.dst, dst=self.src,
                       channel=self.channel, time=time, payload=payload,
                       request_id=self.request_id, trace=self.trace)


@dataclass(slots=True)
class BatchFrame:
    """One coalesced wire frame: every message a source queued for one
    destination during a scheduler round, in send order, plus any
    piggybacked safe-time grants (applied strictly after the data
    messages, so the receiver's injected counts are current)."""

    src: str
    dst: str
    messages: list
    grants: list = field(default_factory=list)
    #: Migration epoch of the sending transport at flush time (stale
    #: frames are dropped whole — every member shares the sender's world).
    epoch: int = 0

    def __len__(self) -> int:
        return len(self.messages) + len(self.grants)


# --- serialisation façade -------------------------------------------------
# The codec module imports the classes above, so it cannot be imported at
# the top of this module; bind lazily on first use instead.  Hot callers
# (the transports) import repro.transport.codec directly.

_codec = None


def _load_codec():
    global _codec
    from . import codec
    _codec = codec
    return codec


def encode(message: Message) -> bytes:
    """Serialise for the wire (and for byte accounting)."""
    return (_codec or _load_codec()).encode(message)


def decode(blob: bytes) -> Message:
    return (_codec or _load_codec()).decode(blob)


def wire_size(message: Message) -> int:
    """Bytes this message occupies on the wire."""
    return len((_codec or _load_codec()).encode(message))


def encode_batch(frame: BatchFrame) -> bytes:
    """Serialise a whole batch frame with a single codec pass."""
    return (_codec or _load_codec()).encode_batch(frame)


def decode_any(blob: bytes):
    """Decode a wire frame: a single :class:`Message` or a
    :class:`BatchFrame`."""
    return (_codec or _load_codec()).decode_any(blob)
