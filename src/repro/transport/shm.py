"""A shared-memory data plane for same-host process-per-node deployments.

The multiprocess backplane's loopback-TCP data plane pays a syscall, a
length-prefixed frame write and a receiver-thread handoff for every wire
frame.  On one host that is pure overhead: the paper's premise (section
2.2.2.1) is that a distributed backplane lives or dies by how little
synchronisation traffic crosses between nodes, and a loopback socket
makes even the cheap traffic expensive.  This module replaces it with
per-directed-link ring buffers over :mod:`multiprocessing.shared_memory`:

* **Single-producer / single-consumer** — each ring belongs to exactly
  one directed link (``src`` process writes, ``dst`` process reads), so
  the fast path needs no cross-process locks at all: the producer only
  advances ``tail``, the consumer only advances ``head``, and a frame is
  visible to the consumer strictly after its bytes are in place.  (The
  producer *process* may write from several threads — the run loop and
  the call-serving receiver threads — so each ring carries a process-
  local ``threading.Lock`` for them; that lock never crosses the wall.)
* **Length-prefixed frames** — the same pickled :class:`Message` /
  :class:`BatchFrame` blobs the TCP transport ships, unchanged, so byte
  accounting, telemetry spans and fault envelopes are identical across
  transports.
* **TCP fallback for oversized frames** — a frame that can never fit the
  ring spills over the regular TCP path, with an ordering marker left in
  the ring so the consumer replays it in its original position (mixing
  two channels would otherwise reorder a link's FIFO stream).

:class:`SharedMemoryTransport` subclasses :class:`TcpTransport` and
overrides only the one-way frame write: synchronous calls (safe time,
hardware) and remote peers without a ring keep using TCP, which also
remains the control plane for genuinely remote deployments.
"""

from __future__ import annotations

import struct
import threading
import time as _time
from typing import Dict, Optional, Tuple

from ..core.errors import LinkDown, TransportError
from ..transport.codec import decode_any, encode
from ..transport.message import Message, MessageKind
from .tcp import TcpTransport, _Connection  # noqa: F401  (re-export shape)

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - always present on CPython >= 3.8
    _shared_memory = None

#: Ring header: two 8-byte monotonic counters at fixed aligned offsets.
_HEAD = struct.Struct("<Q")     # bytes consumed (written by the consumer)
_TAIL = struct.Struct("<Q")     # bytes produced (written by the producer)
_HEADER_SIZE = 16
_LEN = struct.Struct("<I")      # frame body length prefix
_SEQ = struct.Struct("<Q")      # spill sequence number

#: Frame body type tags (first body byte).
_FRAME_DATA = 0
_FRAME_SPILL = 1

#: Default per-link ring capacity.  Frames here are small pickles (tens
#: of bytes to a few KB); 256 KiB absorbs long batches without ever
#: stalling the producer on the benchmark workloads.
DEFAULT_RING_CAPACITY = 256 * 1024

#: Payload tag of the TCP envelope an oversized frame spills through.
_SPILL_TAG = "shm-spill"


class ShmRing:
    """One single-producer/single-consumer frame ring in shared memory.

    Layout: ``head`` (u64, consumer cursor) and ``tail`` (u64, producer
    cursor) followed by the data area.  Cursors are monotonic byte
    counts; physical offsets are ``cursor % capacity``.  The producer
    writes the frame body and only then publishes the new ``tail``, so
    the consumer never observes a torn frame.
    """

    def __init__(self, name: Optional[str] = None, *,
                 capacity: int = DEFAULT_RING_CAPACITY,
                 create: bool = False) -> None:
        if _shared_memory is None:  # pragma: no cover
            raise TransportError("multiprocessing.shared_memory unavailable")
        if create:
            self.shm = _shared_memory.SharedMemory(
                create=True, size=_HEADER_SIZE + capacity)
        else:
            # Attaching registers with the resource tracker too, but the
            # tracker is shared with (and its cache deduplicates against)
            # the creating coordinator, whose unlink() retires the single
            # entry — so no extra bookkeeping is needed here.
            self.shm = _shared_memory.SharedMemory(name=name)
        self.name = self.shm.name
        self.capacity = self.shm.size - _HEADER_SIZE
        self._buf = self.shm.buf
        #: Serialises the *local* producer threads of this process; the
        #: consumer process never touches it.
        self.write_lock = threading.Lock()
        if create:
            _HEAD.pack_into(self._buf, 0, 0)
            _TAIL.pack_into(self._buf, 8, 0)

    # -- cursor helpers -------------------------------------------------
    def _head(self) -> int:
        return _HEAD.unpack_from(self._buf, 0)[0]

    def _tail(self) -> int:
        return _TAIL.unpack_from(self._buf, 8)[0]

    def _copy_in(self, cursor: int, blob) -> None:
        offset = cursor % self.capacity
        first = min(len(blob), self.capacity - offset)
        base = _HEADER_SIZE
        self._buf[base + offset:base + offset + first] = blob[:first]
        if first < len(blob):
            self._buf[base:base + len(blob) - first] = blob[first:]

    def _copy_out(self, cursor: int, length: int) -> bytes:
        offset = cursor % self.capacity
        first = min(length, self.capacity - offset)
        base = _HEADER_SIZE
        chunk = bytes(self._buf[base + offset:base + offset + first])
        if first < length:
            chunk += bytes(self._buf[base:base + length - first])
        return chunk

    # -- producer side --------------------------------------------------
    def fits_ever(self, body_len: int) -> bool:
        """Whether a frame of ``body_len`` body bytes can *ever* ship."""
        return _LEN.size + 1 + body_len <= self.capacity

    def try_write(self, blob: bytes, *, frame_type: int = _FRAME_DATA) -> bool:
        """Append one frame; False when the ring currently lacks room."""
        body_len = 1 + len(blob)
        need = _LEN.size + body_len
        with self.write_lock:
            tail = self._tail()
            if self.capacity - (tail - self._head()) < need:
                return False
            self._copy_in(tail, _LEN.pack(body_len))
            self._copy_in(tail + _LEN.size, bytes((frame_type,)))
            self._copy_in(tail + _LEN.size + 1, blob)
            # Publish last: the frame only becomes visible once complete.
            _TAIL.pack_into(self._buf, 8, tail + need)
            return True

    # -- consumer side --------------------------------------------------
    def try_read(self) -> Optional[Tuple[int, bytes]]:
        """Pop one frame as ``(frame_type, blob)``, or None when empty."""
        head = self._head()
        if self._tail() - head < _LEN.size:
            return None
        (body_len,) = _LEN.unpack(self._copy_out(head, _LEN.size))
        body = self._copy_out(head + _LEN.size, body_len)
        _HEAD.pack_into(self._buf, 0, head + _LEN.size + body_len)
        return body[0], body[1:]

    def pending_bytes(self) -> int:
        return self._tail() - self._head()

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        self._buf = None
        try:
            self.shm.close()
        except (OSError, BufferError):  # pragma: no cover
            pass

    def unlink(self) -> None:
        try:
            self.shm.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover
            pass


def create_ring_segment(capacity: int = DEFAULT_RING_CAPACITY) -> ShmRing:
    """Allocate a fresh ring segment (the coordinator owns its name and
    is responsible for ``unlink()`` once the run's processes detach)."""
    return ShmRing(capacity=capacity, create=True)


def spill_envelope(src: str, dst: str, seq: int, blob: bytes) -> Message:
    """The TCP envelope an oversized ring frame travels in."""
    return Message(kind=MessageKind.CONTROL, src=src, dst=dst,
                   payload=(_SPILL_TAG, seq, blob))


def open_spill_envelope(message: Message):
    """Return ``(seq, blob)`` for a spill envelope, else ``None``."""
    if message.kind is not MessageKind.CONTROL:
        return None
    payload = message.payload
    if (isinstance(payload, tuple) and len(payload) == 3
            and payload[0] == _SPILL_TAG):
        return payload[1], payload[2]
    return None


class SharedMemoryTransport(TcpTransport):
    """The TCP transport with a shared-memory fast path for one-way
    frames on links that have a ring attached.

    Everything above the frame write — batching, fault envelopes, span
    minting, byte accounting, wire counters — is inherited unchanged, so
    a run is bit-identical in its telemetry whichever data plane carried
    the bytes (minus the ``transport.shm_*`` counters themselves).
    """

    #: How long a producer waits for a full ring to drain before
    #: declaring the consumer gone.  Mirrors the TCP retry deadline's
    #: role; a healthy consumer drains a full ring in microseconds.
    FULL_RING_DEADLINE = 10.0

    #: How long the pump waits for a spilled frame's TCP copy once its
    #: ordering marker has been consumed.
    SPILL_DEADLINE = 30.0

    def __init__(self, *, ring_capacity: int = DEFAULT_RING_CAPACITY,
                 **kwargs) -> None:
        super().__init__(**kwargs)
        self.ring_capacity = ring_capacity
        self._out_rings: Dict[Tuple[str, str], ShmRing] = {}
        self._in_rings: Dict[Tuple[str, str], ShmRing] = {}
        self._ring_lock = threading.Lock()
        self._spill_seq: Dict[Tuple[str, str], int] = {}
        #: Arrived spill blobs keyed ``(src, dst, seq)``, filled by the
        #: TCP receiver threads, drained by the ring pump.
        self._spills: Dict[Tuple[str, str, int], bytes] = {}
        self._spill_cond = threading.Condition()
        self._pump_threads: Dict[str, threading.Thread] = {}
        self._pump_running = True
        #: Rings detached by a migration re-splice.  They stay mapped
        #: (closed only at transport close) because a pump thread may
        #: hold a just-detached ring for one more sweep — reading from a
        #: retired ring is harmless (its traffic is from a fenced epoch),
        #: reading from an unmapped one would crash.
        self._retired_rings: list = []

    # ------------------------------------------------------------------
    # ring wiring
    # ------------------------------------------------------------------
    def attach_outbound_ring(self, src: str, dst: str, name: str) -> None:
        """Attach (as producer) the ring carrying ``src`` -> ``dst``."""
        with self._ring_lock:
            if (src, dst) in self._out_rings:
                raise TransportError(f"outbound ring {src}->{dst} exists")
            self._out_rings[(src, dst)] = ShmRing(name)
            self._spill_seq[(src, dst)] = 0

    def attach_inbound_ring(self, src: str, dst: str, name: str) -> None:
        """Attach (as consumer) the ring carrying ``src`` -> ``dst`` and
        ensure ``dst``'s pump thread is running."""
        with self._ring_lock:
            if (src, dst) in self._in_rings:
                raise TransportError(f"inbound ring {src}->{dst} exists")
            self._in_rings[(src, dst)] = ShmRing(name)
            if dst not in self._pump_threads:
                thread = threading.Thread(target=self._pump, args=(dst,),
                                          name=f"pia-shm-pump-{dst}",
                                          daemon=True)
                self._pump_threads[dst] = thread
                thread.start()

    def rings(self) -> Tuple[Tuple[str, str], ...]:
        """Directed links with an outbound ring (introspection/tests)."""
        with self._ring_lock:
            return tuple(sorted(self._out_rings))

    def detach_node_rings(self, name: str) -> None:
        """Detach every ring on a link touching node ``name`` plus its
        spill bookkeeping (migration re-splice: the coordinator hands out
        fresh segments for the node's new placement).  Pump threads
        re-list their rings each sweep, so they simply stop seeing the
        detached ones."""
        with self._ring_lock:
            for cache in (self._out_rings, self._in_rings):
                for key in [k for k in cache if name in k]:
                    self._retired_rings.append(cache.pop(key))
            for key in [k for k in self._spill_seq if name in k]:
                del self._spill_seq[key]
        with self._spill_cond:
            for key in [k for k in self._spills if name in k[:2]]:
                del self._spills[key]
            self._spill_cond.notify_all()

    def forget_peer(self, name: str) -> None:
        self.detach_node_rings(name)
        super().forget_peer(name)

    # ------------------------------------------------------------------
    # producer fast path
    # ------------------------------------------------------------------
    def _send_reliable(self, src: str, dst: str, blob: bytes,
                       time: float) -> None:
        ring = self._out_rings.get((src, dst))
        if ring is None:
            super()._send_reliable(src, dst, blob, time)
            return
        telemetry = self.telemetry
        if not ring.fits_ever(len(blob)):
            # Oversized: spill over TCP, leaving an ordering marker in
            # the ring so the consumer replays the frame in sequence.
            seq = self._spill_seq[(src, dst)]
            self._spill_seq[(src, dst)] = seq + 1
            self._ring_write(ring, src, dst, _SEQ.pack(seq),
                             frame_type=_FRAME_SPILL)
            super()._send_reliable(
                src, dst, encode(spill_envelope(src, dst, seq, blob)), time)
            if telemetry.enabled:
                telemetry.count("transport.shm_spills")
            return
        self._ring_write(ring, src, dst, blob)
        if telemetry.enabled:
            telemetry.count("transport.shm_frames")
            telemetry.count("transport.shm_bytes", len(blob))

    def _ring_write(self, ring: ShmRing, src: str, dst: str, blob: bytes,
                    *, frame_type: int = _FRAME_DATA) -> None:
        """Write one frame, waiting out a transiently full ring."""
        if ring.try_write(blob, frame_type=frame_type):
            return
        deadline = _time.monotonic() + self.FULL_RING_DEADLINE
        pause = 0.0001
        while not ring.try_write(blob, frame_type=frame_type):
            if _time.monotonic() >= deadline:
                raise LinkDown(
                    f"link {src}->{dst}: shared-memory ring stayed full "
                    f"for {self.FULL_RING_DEADLINE:g}s — consumer gone?",
                    src=src, dst=dst)
            _time.sleep(pause)
            pause = min(pause * 2, 0.002)
        if self.telemetry.enabled:
            self.telemetry.count("transport.shm_ring_full_waits")

    # ------------------------------------------------------------------
    # consumer pump
    # ------------------------------------------------------------------
    def _accept_spill(self, message: Message) -> bool:
        opened = open_spill_envelope(message)
        if opened is None:
            return False
        seq, blob = opened
        with self._spill_cond:
            self._spills[(message.src, message.dst, seq)] = blob
            self._spill_cond.notify_all()
        return True

    def _await_spill(self, src: str, dst: str, seq: int) -> Optional[bytes]:
        deadline = _time.monotonic() + self.SPILL_DEADLINE
        with self._spill_cond:
            while True:
                blob = self._spills.pop((src, dst, seq), None)
                if blob is not None:
                    return blob
                remaining = deadline - _time.monotonic()
                if remaining <= 0 or not self._pump_running:
                    return None
                self._spill_cond.wait(min(remaining, 0.1))

    def _inbound_rings_for(self, node: str):
        with self._ring_lock:
            return [(key, ring) for key, ring in sorted(self._in_rings.items())
                    if key[1] == node]

    def _pump(self, node: str) -> None:
        """Drain ``node``'s inbound rings into its endpoint inbox.

        One thread per consumer node polls its rings with a short
        adaptive backoff — the shared-memory analogue of the TCP
        receiver threads, feeding the exact same ingest path (fault
        envelopes, wire counters, executor wakeup included).
        """
        idle = 0
        while self._pump_running:
            endpoint = self._endpoints.get(node)
            if endpoint is None:
                # Rings may attach before the node registers (wiring
                # order is the deployment's business); wait for it.
                _time.sleep(0.001)
                continue
            if not endpoint.running:
                return
            moved = False
            for (src, __), ring in self._inbound_rings_for(node):
                while True:
                    frame = ring.try_read()
                    if frame is None:
                        break
                    frame_type, body = frame
                    if frame_type == _FRAME_SPILL:
                        (seq,) = _SEQ.unpack(body)
                        body = self._await_spill(src, node, seq)
                        if body is None:
                            if self.telemetry.enabled:
                                self.telemetry.count(
                                    "transport.shm_spill_timeouts")
                            continue
                    try:
                        endpoint.ingest_frame(decode_any(body))
                    except TransportError:
                        if self.telemetry.enabled:
                            self.telemetry.count(
                                "transport.shm_decode_errors")
                        continue
                    moved = True
            if moved:
                idle = 0
                continue
            idle += 1
            # Spin briefly for bursty traffic, then back off; the cap
            # bounds idle CPU without adding meaningful latency.
            _time.sleep(0.0002 if idle < 20 else 0.002)

    # ------------------------------------------------------------------
    def pending(self, name: Optional[str] = None) -> int:
        held = super().pending(name)
        with self._ring_lock:
            for (__, dst), ring in self._in_rings.items():
                if name is None or dst == name:
                    # Bytes, not messages — only used as a "not yet
                    # quiet" signal, never as an exact count; the wire
                    # counters are the authoritative balance check.
                    held += 1 if ring.pending_bytes() else 0
        return held

    def close(self) -> None:
        self._pump_running = False
        with self._spill_cond:
            self._spill_cond.notify_all()
        for thread in self._pump_threads.values():
            thread.join(timeout=1.0)
        self._pump_threads.clear()
        with self._ring_lock:
            for ring in list(self._out_rings.values()) \
                    + list(self._in_rings.values()) + self._retired_rings:
                ring.close()
            self._out_rings.clear()
            self._in_rings.clear()
            self._retired_rings.clear()
        self._spills.clear()
        super().close()
