"""A real socket transport over localhost TCP.

The paper's Pia nodes are separate JVM processes joined by RMI over the
Internet; this transport mirrors that deployment shape inside one machine:
each registered node owns a listening socket and a receiver thread, frames
are length-prefixed binary codec frames (:mod:`repro.transport.codec`),
and synchronous calls block on a correlation table.  An optional ``delay_scale`` injects a real ``sleep`` proportional
to the link's modelled latency so wall-clock behaviour can be observed,
scaled down to keep experiments tractable.

Failure handling: outbound connections are cached per directed link and
guarded by a per-connection lock, so concurrent senders to different
destinations never serialise on one global lock.  A send or call that
hits a dead socket evicts the cached connection and retries against the
transport's :class:`~repro.faults.RetryPolicy` (exponential backoff,
plan-seeded jitter when a fault injector is attached); once the attempt
budget or deadline is spent the caller sees a typed
:class:`~repro.core.errors.LinkDown` rather than a raw socket error.

The deterministic experiments use :class:`InMemoryTransport`; this class
exists to exercise the genuinely concurrent, multi-threaded deployment.
"""

from __future__ import annotations

import itertools
import os
import socket
import struct
import threading
import time as _time
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from ..core.errors import LinkDown, RemoteCallError, TransportError
from ..core.fastcopy import is_immutable
from ..faults.retry import RetryPolicy
from ..observability import NULL_TELEMETRY, TraceKind
from ..observability.spans import ensure_context, span_details
from .accounting import NetworkAccounting
from .batch import SendBatcher
from .codec import decode, decode_any, encode, encode_batch
from .latency import SAME_HOST, LatencyModel
from .message import BatchFrame, Message, MessageKind

_LENGTH = struct.Struct("!I")

#: Cross-process fault envelopes.  In a multiprocess deployment the fault
#: injector's *decision* (drop/duplicate/delay/reorder, counted) happens in
#: the sender's process, but the queues those decisions require (parked
#: deliveries, swap slots, duplicate suppression) must live where the
#: releasing poll happens — the destination's process.  The sender wraps
#: the affected message in a CONTROL envelope telling the receiving
#: transport's injector what to do with it on arrival.
_FAULT_HOLD = "fault-hold"
_FAULT_SWAP = "fault-swap"
_FAULT_DUP = "fault-dup"
_FAULT_TAGS = (_FAULT_HOLD, _FAULT_SWAP, _FAULT_DUP)


#: Reply envelope for a synchronous call whose handler raised: the
#: payload carries ``(_CALL_ERROR, exception type name, str(exc))`` and
#: ``call()`` re-raises it as a typed :class:`RemoteCallError` instead of
#: letting the connection die and the caller burn its retry budget.
_CALL_ERROR = "call-error"


def _open_call_error(message: Message):
    """Return ``(type_name, text)`` for a call-error envelope, else None."""
    if message.kind is not MessageKind.CONTROL:
        return None
    payload = message.payload
    if (isinstance(payload, tuple) and len(payload) == 3
            and payload[0] == _CALL_ERROR):
        return payload[1], payload[2]
    return None


def _fault_envelope(tag: str, message: Message, ticks: int = 0) -> Message:
    return Message(kind=MessageKind.CONTROL, src=message.src,
                   dst=message.dst, channel=message.channel,
                   time=message.time, payload=(tag, ticks, message),
                   epoch=message.epoch)


def _open_fault_envelope(message: Message):
    """Return ``(tag, ticks, inner)`` for a fault envelope, else ``None``."""
    if message.kind is not MessageKind.CONTROL:
        return None
    payload = message.payload
    if (isinstance(payload, tuple) and len(payload) == 3
            and payload[0] in _FAULT_TAGS):
        return payload
    return None


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n:
        piece = sock.recv(n)
        if not piece:
            raise ConnectionError("peer closed")
        chunks.append(piece)
        n -= len(piece)
    return b"".join(chunks)


def _send_frame(sock: socket.socket, blob: bytes) -> None:
    sock.sendall(_LENGTH.pack(len(blob)) + blob)


def _recv_frame(sock: socket.socket) -> bytes:
    (length,) = _LENGTH.unpack(_recv_exact(sock, _LENGTH.size))
    return _recv_exact(sock, length)


class _NodeEndpoint:
    """Server socket + receiver threads for one node."""

    def __init__(self, transport: "TcpTransport", name: str) -> None:
        self.transport = transport
        self.name = name
        self.inbox: deque = deque()
        self.lock = threading.Lock()
        self.server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.server.bind(("127.0.0.1", 0))
        self.server.listen(16)
        self.port = self.server.getsockname()[1]
        self.running = True
        self.accept_thread = threading.Thread(
            target=self._accept_loop, name=f"pia-accept-{name}", daemon=True)
        self.accept_thread.start()

    def _accept_loop(self) -> None:
        while self.running:
            try:
                conn, __ = self.server.accept()
            except OSError:
                return
            threading.Thread(target=self._serve, args=(conn,),
                             name=f"pia-conn-{self.name}", daemon=True).start()

    def _serve(self, conn: socket.socket) -> None:
        try:
            while self.running:
                message = decode_any(_recv_frame(conn))
                if not isinstance(message, BatchFrame) and message.kind in (
                        MessageKind.SAFE_TIME_REQUEST, MessageKind.HW_CALL):
                    # A handler error must reach the *caller*, not kill
                    # this connection thread: reply with a typed error
                    # envelope that call() re-raises as RemoteCallError.
                    try:
                        reply = self.transport._dispatch_call(self.name,
                                                              message)
                    except Exception as exc:
                        reply = message.reply(
                            MessageKind.CONTROL,
                            payload=(_CALL_ERROR, type(exc).__name__,
                                     str(exc)))
                    _send_frame(conn, encode(reply))
                else:
                    self.ingest_frame(message)
        except (ConnectionError, OSError):
            pass
        finally:
            conn.close()

    def ingest_frame(self, message) -> None:
        """File one arrived one-way wire frame — a single
        :class:`Message` or a whole :class:`BatchFrame` — shared by the
        TCP receiver threads and the shared-memory ring pump."""
        if isinstance(message, BatchFrame):
            transport = self.transport
            if message.epoch != transport.epoch:
                # A whole frame from a pre-failover world: every member
                # shares the sender's epoch, so the frame drops whole.
                transport._count_stale(len(message))
                return
            for member in message.messages:
                # Members were stamped at enqueue time; the frame's epoch
                # is authoritative (enqueue and flush straddle no bump —
                # rollback clears the batcher first).
                member.epoch = message.epoch
                self._ingest(member)
            if message.grants:
                for grant in message.grants:
                    grant.epoch = message.epoch
                with self.lock:
                    self.inbox.extend(message.grants)
                    with self.transport.wire_lock:
                        self.transport.wire_in += len(message.grants)
                self.transport._wake()
        else:
            self._ingest(message)

    def _ingest(self, message: Message) -> None:
        """File one arrived one-way message: unwrap fault envelopes into
        the local injector's queues, everything else into the inbox."""
        transport = self.transport
        if transport._accept_spill(message):
            # An oversized-frame spill riding the TCP fallback path; the
            # ring pump ingests (and wire-counts) the inner frame when
            # its ordering marker comes up.
            return
        injector = transport.fault_injector
        opened = _open_fault_envelope(message)
        with self.lock:
            # Epoch check, filing and wire-count happen under one lock so
            # a concurrent ``set_epoch`` (which takes every endpoint lock)
            # can never zero the counters between a stale frame passing
            # the check and being counted.
            if message.epoch != transport.epoch:
                transport._count_stale(1)
                return
            if opened is not None:
                tag, ticks, inner = opened
                if injector is None:
                    # No fault plane on this side: deliver the inner
                    # message plainly rather than losing it.
                    self.inbox.append(inner)
                elif tag == _FAULT_HOLD:
                    injector.hold(self.name, inner, ticks)
                elif tag == _FAULT_SWAP:
                    injector.hold_swap(inner.src, self.name, inner)
                else:   # _FAULT_DUP: redundant copy of a duplicated send
                    injector.expect_duplicate(self.name, inner.msg_id,
                                              src=inner.src)
                    self.inbox.append(inner)
                # Counted only after the message is filed somewhere
                # visible (inbox or injector queue): the quiescence
                # balance check must never see wire_in caught up while a
                # delivery is in limbo.
                with transport.wire_lock:
                    transport.wire_in += 1
            else:
                self.inbox.append(message)
                with transport.wire_lock:
                    transport.wire_in += 1
                if injector is not None:
                    # A swap-parked message is released right behind the
                    # link's next arrival — the cross-process mirror of
                    # the sender-side take_swaps() call.
                    late = injector.take_swaps(message.src, self.name)
                    if late:
                        self.inbox.extend(late)
        transport._wake()

    def close(self) -> None:
        self.running = False
        try:
            self.server.close()
        except OSError:
            pass


class _Connection:
    """A cached outbound socket plus its own send lock."""

    __slots__ = ("sock", "lock")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.lock = threading.Lock()


class TcpTransport:
    """Message passing between in-process nodes over real TCP sockets."""

    def __init__(self, *, default_model: LatencyModel = SAME_HOST,
                 delay_scale: float = 0.0,
                 retry_policy: Optional[RetryPolicy] = None,
                 batching: bool = False) -> None:
        self.accounting = NetworkAccounting(default_model)
        #: Multiply modelled link delay by this and really sleep (0 = off).
        self.delay_scale = delay_scale
        #: Coalesce per-destination sends into batch frames (opt-in).
        self.batching = batching
        self.batcher = SendBatcher()
        #: ``(src, dst) -> [Message]`` hook filled by an executor: extra
        #: safe-time grants to piggyback on an outgoing batch frame.
        self.piggyback_provider = None
        #: Per-transport-instance message id stream (stamped at the send
        #: boundary).  Instance-local so two transports in one process —
        #: or a forked child's inherited copy — never interleave one
        #: global stream; ids only need to be unique per ``(src, id)``
        #: within the duplicate-suppression window, which this gives.
        self._msg_ids = itertools.count(1)
        #: Governs reconnect attempts for dead sockets *and* retries of
        #: injected drops when a fault plane is attached.
        self.retry_policy = retry_policy or RetryPolicy()
        self._endpoints: Dict[str, _NodeEndpoint] = {}
        self._call_handlers: Dict[str, Callable[[Message], Message]] = {}
        self._conns: Dict[Tuple[str, str], _Connection] = {}
        #: Cached per-directed-link connections for synchronous calls,
        #: separate from the one-way data connections: a call holds its
        #: connection's lock across the send *and* the reply read, which
        #: must never stall unrelated one-way traffic.  Reuse matters —
        #: a fresh ``create_connection`` per safe-time call churns
        #: ephemeral ports and dominates call latency under load.
        self._call_conns: Dict[Tuple[str, str], _Connection] = {}
        #: Optional executor hook invoked (from receiver threads) after a
        #: message lands in an inbox: lets an event-driven worker park on
        #: a condition instead of spinning on poll().
        self.wakeup_hook: Optional[Callable[[], None]] = None
        #: Nodes living in *other* processes: name -> (host, port).  Set
        #: by the multiprocess deployment after every worker has bound its
        #: listener; destinations are resolved here when not local.
        self._peers: Dict[str, Tuple[str, int]] = {}
        #: One-way wire traffic counters (logical messages + grants, not
        #: frames): the distributed quiescence check compares the sums of
        #: these across processes to know nothing is in flight.
        self.wire_out = 0
        self.wire_in = 0
        #: ``+=`` on an int is not atomic; in the threaded deployment
        #: many node threads share this transport, so unguarded counter
        #: bumps can lose updates and the quiescence balance check would
        #: then spin until its timeout.
        self.wire_lock = threading.Lock()
        #: Migration epoch (see :meth:`set_epoch`).  Outgoing traffic is
        #: stamped with it; arrivals stamped with an older epoch are
        #: dropped at ingest so a rolled-back run never sees ghosts from
        #: the world it left.
        self.epoch = 0
        #: Frames dropped by the epoch fence (diagnostic).
        self.stale_epoch_drops = 0
        #: The process that owns the live sockets.  A transport that
        #: crosses a ``fork``/``spawn`` must not reuse inherited FDs —
        #: the first touch from another PID drops them (see
        #: :meth:`_guard_process`).
        self._pid = os.getpid()
        #: Guards the connection *cache* only; frame writes serialise on
        #: each connection's own lock so independent links never contend.
        self._conn_lock = threading.Lock()
        #: Telemetry sink (attach via :meth:`attach_telemetry`).  Counter
        #: updates from receiver threads are advisory — a lost tick under
        #: contention skews a statistic, never the simulation.
        self.telemetry = NULL_TELEMETRY
        #: Fault plane (attach via :meth:`attach_faults`).
        self.fault_injector = None

    def set_piggyback_provider(self, provider) -> None:
        """Install the executor's grant source for batch flushes."""
        self.piggyback_provider = provider

    def _wake(self) -> None:
        """Nudge a parked executor after an arrival (see wakeup_hook)."""
        hook = self.wakeup_hook
        if hook is not None:
            hook()

    def _accept_spill(self, message: Message) -> bool:
        """Intercept an shm spill envelope (shared-memory subclass only)."""
        return False

    def _count_stale(self, n: int) -> None:
        self.stale_epoch_drops += n
        if self.telemetry.enabled:
            self.telemetry.count("transport.stale_epoch_drops", n)

    def set_epoch(self, epoch: int) -> None:
        """Enter migration epoch ``epoch`` and zero the wire counters.

        Called at a failover/migration barrier while local senders are
        parked.  Every endpoint lock is held across the switch so no
        receiver thread can file a stale frame between the epoch bump and
        the counter reset — afterwards the balance starts clean (0 == 0)
        and any late frame from the old world drops at ingest.
        """
        endpoints = sorted(self._endpoints.values(), key=lambda e: e.name)
        for endpoint in endpoints:
            endpoint.lock.acquire()
        try:
            self.epoch = epoch
            with self.wire_lock:
                self.wire_out = 0
                self.wire_in = 0
        finally:
            for endpoint in reversed(endpoints):
                endpoint.lock.release()

    def attach_telemetry(self, telemetry) -> None:
        """Feed message traces and per-link counters to ``telemetry``."""
        self.telemetry = telemetry
        self.accounting.telemetry = telemetry
        if self.fault_injector is not None:
            self.fault_injector.telemetry = telemetry

    def attach_faults(self, injector) -> None:
        """Route every send/poll through ``injector``'s fault plane."""
        self.fault_injector = injector
        injector.telemetry = self.telemetry
        self.retry_policy = injector.retry_policy

    def attach_health(self, monitor) -> None:
        """Feed per-link health estimators from the send/poll boundary."""
        self.accounting.health = monitor

    # ------------------------------------------------------------------
    # child-process safety
    # ------------------------------------------------------------------
    def _guard_process(self) -> None:
        """Detect crossing a ``fork``/``spawn`` and drop inherited sockets.

        A forked child inherits the parent's cached outbound connections
        and listening sockets as shared FDs; writing on them would corrupt
        the parent's frame streams, and accepting on them would steal the
        parent's connections.  On the first touch from a new PID every
        cached connection is closed (connections re-establish lazily on
        the next send) and every endpoint is rebound to a fresh listener
        on a new port, preserving its inbox.
        """
        if os.getpid() == self._pid:
            return
        self._pid = os.getpid()
        # Only the calling thread survives a fork, so no other thread can
        # be mid-send; closing our dups never disturbs the parent's FDs.
        conns, self._conns = self._conns, {}
        call_conns, self._call_conns = self._call_conns, {}
        for entry in list(conns.values()) + list(call_conns.values()):
            try:
                entry.sock.close()
            except OSError:
                pass
        stale, self._endpoints = self._endpoints, {}
        for name, old in stale.items():
            old.running = False
            try:
                old.server.close()
            except OSError:
                pass
            fresh = _NodeEndpoint(self, name)
            fresh.inbox.extend(old.inbox)
            self._endpoints[name] = fresh
        if self.telemetry.enabled:
            self.telemetry.count("transport.fork_resets")

    # ------------------------------------------------------------------
    def set_peer(self, name: str, port: int,
                 host: str = "127.0.0.1") -> None:
        """Declare a node living in another process, reachable at
        ``host:port`` (multiprocess deployment)."""
        if name in self._endpoints:
            raise TransportError(f"node {name!r} is registered locally")
        self._peers[name] = (host, port)

    def forget_peer(self, name: str) -> None:
        """Drop a remote node's address plus every cached link and queued
        batch touching it (the migration re-splice: the node is about to
        be re-declared at its new home via :meth:`set_peer`)."""
        self._peers.pop(name, None)
        self.batcher.clear(name)
        with self._conn_lock:
            for cache in (self._conns, self._call_conns):
                for key in [k for k in cache if name in k]:
                    entry = cache.pop(key)
                    try:
                        entry.sock.close()
                    except OSError:
                        pass

    def local_port(self, name: str) -> int:
        """The TCP port node ``name``'s local endpoint listens on."""
        endpoint = self._endpoints.get(name)
        if endpoint is None:
            raise TransportError(f"unknown node {name!r}")
        return endpoint.port

    def _address_of(self, dst: str) -> Tuple[str, int]:
        endpoint = self._endpoints.get(dst)
        if endpoint is not None:
            return ("127.0.0.1", endpoint.port)
        peer = self._peers.get(dst)
        if peer is not None:
            return peer
        raise TransportError(f"unknown destination node {dst!r}")

    def _known(self, dst: str) -> bool:
        return dst in self._endpoints or dst in self._peers

    # ------------------------------------------------------------------
    def register(self, name: str,
                 call_handler: Optional[Callable[[Message], Message]] = None
                 ) -> int:
        """Create the node's endpoint; returns its TCP port."""
        self._guard_process()
        if name in self._endpoints:
            raise TransportError(f"node {name!r} already registered")
        endpoint = _NodeEndpoint(self, name)
        self._endpoints[name] = endpoint
        if call_handler is not None:
            self._call_handlers[name] = call_handler
        return endpoint.port

    def unregister(self, name: str) -> None:
        """Tear down the node's endpoint and any cached links to it."""
        endpoint = self._endpoints.pop(name, None)
        if endpoint is not None:
            endpoint.close()
        self._call_handlers.pop(name, None)
        self.batcher.clear(name)
        with self._conn_lock:
            for cache in (self._conns, self._call_conns):
                for key in [k for k in cache if name in k]:
                    entry = cache.pop(key)
                    try:
                        entry.sock.close()
                    except OSError:
                        pass

    def nodes(self) -> list:
        return sorted(self._endpoints)

    def set_link(self, a: str, b: str, model: LatencyModel) -> None:
        self.accounting.set_model(a, b, model)

    def close(self) -> None:
        """Tear down endpoints and connections and reset link state.

        A closed transport must be reusable: peers, queued batches and
        the wire counters are cleared too, so a later ``register`` +
        ``send`` cycle neither resolves stale remote addresses nor starts
        with ``wire_balanced()`` already false.
        """
        for endpoint in self._endpoints.values():
            endpoint.close()
        with self._conn_lock:
            for cache in (self._conns, self._call_conns):
                for entry in cache.values():
                    try:
                        entry.sock.close()
                    except OSError:
                        pass
                cache.clear()
        self._endpoints.clear()
        self._peers.clear()
        self.batcher.clear()
        with self.wire_lock:
            self.wire_out = 0
            self.wire_in = 0
        self.epoch = 0
        self.stale_epoch_drops = 0

    # ------------------------------------------------------------------
    def _connection(self, src: str, dst: str) -> _Connection:
        key = (src, dst)
        with self._conn_lock:
            entry = self._conns.get(key)
            if entry is None:
                sock = socket.create_connection(self._address_of(dst),
                                                timeout=10.0)
                entry = _Connection(sock)
                self._conns[key] = entry
            return entry

    def _evict(self, src: str, dst: str, entry: _Connection) -> None:
        """Drop a dead cached connection so the next attempt reconnects."""
        with self._conn_lock:
            if self._conns.get((src, dst)) is entry:
                del self._conns[(src, dst)]
        try:
            entry.sock.close()
        except OSError:
            pass
        if self.telemetry.enabled:
            self.telemetry.count("transport.evictions")

    def _call_connection(self, src: str, dst: str) -> _Connection:
        """The cached request/response connection for one directed link."""
        key = (src, dst)
        with self._conn_lock:
            entry = self._call_conns.get(key)
            if entry is None:
                sock = socket.create_connection(self._address_of(dst),
                                                timeout=10.0)
                entry = _Connection(sock)
                self._call_conns[key] = entry
                if self.telemetry.enabled:
                    self.telemetry.count("transport.call_connects")
            return entry

    def _evict_call(self, src: str, dst: str, entry: _Connection) -> None:
        with self._conn_lock:
            if self._call_conns.get((src, dst)) is entry:
                del self._call_conns[(src, dst)]
        try:
            entry.sock.close()
        except OSError:
            pass
        if self.telemetry.enabled:
            self.telemetry.count("transport.evictions")

    def _charge(self, src: str, dst: str, size: int) -> None:
        delay = self.accounting.record(src, dst, size)
        if self.delay_scale > 0:
            _time.sleep(delay * self.delay_scale)

    def _dispatch_call(self, name: str, message: Message) -> Message:
        handler = self._call_handlers.get(name)
        if handler is None:
            raise TransportError(f"node {name!r} accepts no calls")
        return handler(message)

    def _retry_sleep(self, src: str, dst: str, retry_index: int,
                     time: float, seq: object) -> None:
        injector = self.fault_injector
        u = 0.5
        if injector is not None:
            u = injector.backoff_uniform(src, dst, retry_index)
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.count("transport.retries")
            telemetry.trace(TraceKind.RETRY, time=time,
                            subject=f"{src}->{dst}",
                            attempt=retry_index + 1, seq=seq)
        _time.sleep(self.retry_policy.backoff(retry_index, u))

    def _send_reliable(self, src: str, dst: str, blob: bytes,
                       time: float) -> None:
        """Write one frame, reconnecting through dead cached sockets."""
        policy = self.retry_policy
        attempt = 0
        start = _time.monotonic()
        while True:
            entry = None
            try:
                entry = self._connection(src, dst)
                with entry.lock:
                    _send_frame(entry.sock, blob)
                return
            except (ConnectionError, OSError) as exc:
                if entry is not None:
                    self._evict(src, dst, entry)
                attempt += 1
                exhausted = (attempt >= policy.max_attempts
                             or _time.monotonic() - start >= policy.deadline)
                if exhausted:
                    raise LinkDown(
                        f"link {src}->{dst}: send failed after {attempt} "
                        f"attempt(s): {exc}", src=src, dst=dst,
                        attempts=attempt) from exc
                self._retry_sleep(src, dst, attempt - 1, time, None)

    # ------------------------------------------------------------------
    def send(self, message: Message) -> float:
        self._guard_process()
        if message.msg_id == 0:
            message.msg_id = next(self._msg_ids)
        message.epoch = self.epoch
        if self.telemetry.enabled:
            # Mint before the fault plane decides the fate: duplicates,
            # delays and retries all re-encode this message, so every
            # copy crossing the wire carries the original send's span.
            ensure_context(self.telemetry, message)
        injector = self.fault_injector
        remote = message.dst in self._peers
        action, ticks = "deliver", 0
        if injector is not None:
            action, ticks = injector.on_send(message)
            if action == "lost":
                return 0.0
        if self.batching and action in ("deliver", "duplicate"):
            # Queue for the next flush.  Mutable payloads are isolated
            # through a pickle round trip now so a sender mutating its
            # object between enqueue and flush cannot change what ships;
            # immutable payloads are enqueued as-is (copy elision).
            if is_immutable(message.payload):
                member = message
            else:
                member = decode(encode(message))
            if not self._known(message.dst):
                raise TransportError(
                    f"unknown destination node {message.dst!r}")
            telemetry = self.telemetry
            if telemetry.enabled:
                telemetry.trace(TraceKind.MSG_SEND, time=message.time,
                                subject=f"{message.src}->{message.dst}",
                                message_kind=message.kind.value, batched=True,
                                **span_details(message.trace))
            self.batcher.enqueue(message.src, message.dst, member)
            if action == "duplicate":
                if remote:
                    # Redundant copy rides behind the original; the
                    # receiver marks the msg_id for exactly-once delivery.
                    self.batcher.enqueue(message.src, message.dst,
                                         _fault_envelope(_FAULT_DUP, member))
                else:
                    self.batcher.enqueue(message.src, message.dst, member)
                    injector.expect_duplicate(message.dst, member.msg_id,
                                               src=member.src)
            if injector is not None:
                late = injector.take_swaps(message.src, message.dst)
                if late:
                    self.batcher.extend(message.src, message.dst, late)
            return 0.0
        blob = encode(message)
        self._charge(message.src, message.dst, len(blob))
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.trace(TraceKind.MSG_SEND, time=message.time,
                            subject=f"{message.src}->{message.dst}",
                            message_kind=message.kind.value, bytes=len(blob),
                            **span_details(message.trace))
        if action == "delay":
            if remote:
                self._send_reliable(
                    message.src, message.dst,
                    encode(_fault_envelope(_FAULT_HOLD, decode(blob), ticks)),
                    message.time)
                with self.wire_lock:
                    self.wire_out += 1
            else:
                injector.hold(message.dst, decode(blob), ticks)
            return 0.0
        if action == "reorder":
            if remote:
                self._send_reliable(
                    message.src, message.dst,
                    encode(_fault_envelope(_FAULT_SWAP, decode(blob))),
                    message.time)
                with self.wire_lock:
                    self.wire_out += 1
            else:
                injector.hold_swap(message.src, message.dst, decode(blob))
            return 0.0
        self._send_reliable(message.src, message.dst, blob, message.time)
        with self.wire_lock:
            self.wire_out += 1
        if action == "duplicate":
            self._charge(message.src, message.dst, len(blob))
            if remote:
                self._send_reliable(
                    message.src, message.dst,
                    encode(_fault_envelope(_FAULT_DUP, decode(blob))),
                    message.time)
            else:
                self._send_reliable(message.src, message.dst, blob,
                                    message.time)
                injector.expect_duplicate(message.dst, message.msg_id,
                                           src=message.src)
            with self.wire_lock:
                self.wire_out += 1
        if injector is not None:
            for late in injector.take_swaps(message.src, message.dst):
                self._send_reliable(message.src, message.dst, encode(late),
                                    message.time)
                with self.wire_lock:
                    self.wire_out += 1
        return 0.0

    def flush_batches(self, *, src: Optional[str] = None,
                      dst: Optional[str] = None) -> int:
        """Ship matching queued batches: one frame, one ``sendall``, one
        latency charge per non-empty link.  Returns the number of logical
        messages flushed."""
        if not self.batching:
            return 0
        self._guard_process()
        flushed = 0
        provider = self.piggyback_provider
        telemetry = self.telemetry
        for (s, d), members in self.batcher.take(src=src, dst=dst):
            if not self._known(d):
                continue    # destination unregistered after enqueue
            grants = provider(s, d) if provider is not None else []
            blob = encode_batch(BatchFrame(s, d, members, grants,
                                           epoch=self.epoch))
            delay = self.accounting.record_frame(s, d, len(blob),
                                                 len(members))
            if self.delay_scale > 0:
                _time.sleep(delay * self.delay_scale)
            if telemetry.enabled and grants:
                telemetry.count("safetime.piggyback_sent", len(grants))
            self._send_reliable(s, d, blob, members[-1].time)
            with self.wire_lock:
                self.wire_out += len(members) + len(grants)
            flushed += len(members)
        return flushed

    def push_grants(self, src: str, dst: str,
                    grants: List[Message]) -> bool:
        """Ship a standalone grant-only frame ``src``→``dst`` — one frame
        instead of the stalled peer's two-frame request round trip."""
        if not self.batching or not grants:
            return False
        if not self._known(dst):
            return False
        blob = encode_batch(BatchFrame(src, dst, [], list(grants),
                                       epoch=self.epoch))
        delay = self.accounting.record_frame(src, dst, len(blob), 0)
        if self.delay_scale > 0:
            _time.sleep(delay * self.delay_scale)
        self._send_reliable(src, dst, blob, grants[-1].time)
        with self.wire_lock:
            self.wire_out += len(grants)
        return True

    def call(self, message: Message) -> Message:
        """Blocking request/response over a cached per-link connection.

        Connection failures (refused, reset, peer gone) evict the cached
        connection and are retried per the retry policy; exhaustion
        raises :class:`LinkDown` so callers never see a raw socket error
        for a dead peer.  A reply reporting that the *handler* raised is
        re-raised as :class:`RemoteCallError` — the link is fine, so no
        retries are burned on it.
        """
        self._guard_process()
        if message.msg_id == 0:
            message.msg_id = next(self._msg_ids)
        telemetry = self.telemetry
        if telemetry.enabled:
            ensure_context(telemetry, message)
        if self.fault_injector is not None:
            self.fault_injector.check_call(message)
        if self.batching:
            # A call is a synchronisation point on this link: queued
            # traffic either way lands first, as in the unbatched run.
            self.flush_batches(src=message.src, dst=message.dst)
            self.flush_batches(src=message.dst, dst=message.src)
        blob = encode(message)
        self._charge(message.src, message.dst, len(blob))
        if telemetry.enabled and message.trace is not None:
            telemetry.trace(TraceKind.MSG_SEND, time=message.time,
                            subject=f"{message.src}->{message.dst}",
                            message_kind=message.kind.value, bytes=len(blob),
                            call=True, **span_details(message.trace))
        policy = self.retry_policy
        attempt = 0
        start = _time.monotonic()
        while True:
            entry = None
            try:
                entry = self._call_connection(message.src, message.dst)
                with entry.lock:
                    _send_frame(entry.sock, blob)
                    reply = decode(_recv_frame(entry.sock))
                break
            except (ConnectionError, OSError) as exc:
                if entry is not None:
                    self._evict_call(message.src, message.dst, entry)
                attempt += 1
                exhausted = (attempt >= policy.max_attempts
                             or _time.monotonic() - start >= policy.deadline)
                if exhausted:
                    raise LinkDown(
                        f"call {message.src}->{message.dst} failed after "
                        f"{attempt} attempt(s): {exc}", src=message.src,
                        dst=message.dst, attempts=attempt) from exc
                self._retry_sleep(message.src, message.dst, attempt - 1,
                                  message.time, "call")
        error = _open_call_error(reply)
        if error is not None:
            remote_type, text = error
            raise RemoteCallError(
                f"call {message.src}->{message.dst} "
                f"({message.kind.value}) failed in the remote handler: "
                f"{remote_type}: {text}", src=message.src, dst=message.dst,
                remote_type=remote_type)
        self._charge(message.dst, message.src, len(encode(reply)))
        if telemetry.enabled:
            telemetry.trace(TraceKind.MSG_RECV, time=reply.time,
                            subject=f"{message.dst}->{message.src}",
                            message_kind=reply.kind.value, call=True,
                            **span_details(reply.trace))
        return reply

    def poll(self, name: str, *, limit: Optional[int] = None) -> List[Message]:
        self._guard_process()
        endpoint = self._endpoints.get(name)
        if endpoint is None:
            raise TransportError(f"unknown node {name!r}")
        if self.batching:
            # Flush traffic bound for this node; frames arrive via the
            # receiver thread, so they may only be drained by a later
            # poll — the polling loops already spin until quiescent.
            self.flush_batches(dst=name)
        injector = self.fault_injector
        drained: List[Message] = []
        with endpoint.lock:
            if injector is not None:
                endpoint.inbox.extend(injector.release_due(name))
            while endpoint.inbox and (limit is None or len(drained) < limit):
                message = endpoint.inbox.popleft()
                if injector is not None and \
                        injector.suppress_duplicate(name, message):
                    continue
                drained.append(message)
        health = self.accounting.health
        if health is not None:
            health.on_poll(name, len(drained))
        telemetry = self.telemetry
        if telemetry.enabled and drained:
            for message in drained:
                telemetry.trace(TraceKind.MSG_RECV, time=message.time,
                                subject=f"{message.src}->{message.dst}",
                                message_kind=message.kind.value,
                                **span_details(message.trace))
        return drained

    def pending(self, name: Optional[str] = None) -> int:
        held = self.batcher.pending(name)
        if self.fault_injector is not None:
            held += self.fault_injector.held_pending(name)
        if name is not None:
            endpoint = self._endpoints.get(name)
            return (len(endpoint.inbox) if endpoint else 0) + held
        return sum(len(e.inbox) for e in self._endpoints.values()) + held

    def wire_balanced(self) -> bool:
        """True when every counted send has been ingested at some endpoint.

        ``pending()`` cannot see a frame that has left the sender's socket
        but has not yet been filed by the receiver thread — on a loaded
        host that window stretches to milliseconds, long enough to fool an
        idle sweep.  The counter balance closes it: an in-flight frame
        keeps ``wire_out`` ahead of ``wire_in``.  Only meaningful when all
        the transport's peers are in this process (the threaded executor);
        the multiprocess coordinator compares per-worker sums instead.
        """
        with self.wire_lock:
            return self.wire_out == self.wire_in

    def flush(self) -> int:
        """Drop every undelivered message (rollback support)."""
        dropped = 0
        for endpoint in self._endpoints.values():
            with endpoint.lock:
                dropped += len(endpoint.inbox)
                endpoint.inbox.clear()
        dropped += self.batcher.clear()
        if self.fault_injector is not None:
            dropped += self.fault_injector.flush()
        return dropped

    def __enter__(self) -> "TcpTransport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
