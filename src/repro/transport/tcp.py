"""A real socket transport over localhost TCP.

The paper's Pia nodes are separate JVM processes joined by RMI over the
Internet; this transport mirrors that deployment shape inside one machine:
each registered node owns a listening socket and a receiver thread, frames
are length-prefixed pickles, and synchronous calls block on a correlation
table.  An optional ``delay_scale`` injects a real ``sleep`` proportional
to the link's modelled latency so wall-clock behaviour can be observed,
scaled down to keep experiments tractable.

The deterministic experiments use :class:`InMemoryTransport`; this class
exists to exercise the genuinely concurrent, multi-threaded deployment.
"""

from __future__ import annotations

import itertools
import socket
import struct
import threading
import time as _time
from collections import deque
from typing import Callable, Dict, List, Optional

from ..core.errors import TransportError
from ..observability import NULL_TELEMETRY, TraceKind
from .accounting import NetworkAccounting
from .latency import SAME_HOST, LatencyModel
from .message import Message, MessageKind, decode, encode

_LENGTH = struct.Struct("!I")


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n:
        piece = sock.recv(n)
        if not piece:
            raise ConnectionError("peer closed")
        chunks.append(piece)
        n -= len(piece)
    return b"".join(chunks)


def _send_frame(sock: socket.socket, blob: bytes) -> None:
    sock.sendall(_LENGTH.pack(len(blob)) + blob)


def _recv_frame(sock: socket.socket) -> bytes:
    (length,) = _LENGTH.unpack(_recv_exact(sock, _LENGTH.size))
    return _recv_exact(sock, length)


class _NodeEndpoint:
    """Server socket + receiver threads for one node."""

    def __init__(self, transport: "TcpTransport", name: str) -> None:
        self.transport = transport
        self.name = name
        self.inbox: deque = deque()
        self.lock = threading.Lock()
        self.server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.server.bind(("127.0.0.1", 0))
        self.server.listen(16)
        self.port = self.server.getsockname()[1]
        self.running = True
        self.accept_thread = threading.Thread(
            target=self._accept_loop, name=f"pia-accept-{name}", daemon=True)
        self.accept_thread.start()

    def _accept_loop(self) -> None:
        while self.running:
            try:
                conn, __ = self.server.accept()
            except OSError:
                return
            threading.Thread(target=self._serve, args=(conn,),
                             name=f"pia-conn-{self.name}", daemon=True).start()

    def _serve(self, conn: socket.socket) -> None:
        try:
            while self.running:
                message = decode(_recv_frame(conn))
                if message.kind in (MessageKind.SAFE_TIME_REQUEST,
                                    MessageKind.HW_CALL):
                    reply = self.transport._dispatch_call(self.name, message)
                    _send_frame(conn, encode(reply))
                else:
                    with self.lock:
                        self.inbox.append(message)
        except (ConnectionError, OSError):
            pass
        finally:
            conn.close()

    def close(self) -> None:
        self.running = False
        try:
            self.server.close()
        except OSError:
            pass


class TcpTransport:
    """Message passing between in-process nodes over real TCP sockets."""

    def __init__(self, *, default_model: LatencyModel = SAME_HOST,
                 delay_scale: float = 0.0) -> None:
        self.accounting = NetworkAccounting(default_model)
        #: Multiply modelled link delay by this and really sleep (0 = off).
        self.delay_scale = delay_scale
        self._endpoints: Dict[str, _NodeEndpoint] = {}
        self._call_handlers: Dict[str, Callable[[Message], Message]] = {}
        self._conns: Dict[tuple, socket.socket] = {}
        self._conn_lock = threading.Lock()
        #: Telemetry sink (attach via :meth:`attach_telemetry`).  Counter
        #: updates from receiver threads are advisory — a lost tick under
        #: contention skews a statistic, never the simulation.
        self.telemetry = NULL_TELEMETRY

    def attach_telemetry(self, telemetry) -> None:
        """Feed message traces and per-link counters to ``telemetry``."""
        self.telemetry = telemetry
        self.accounting.telemetry = telemetry

    # ------------------------------------------------------------------
    def register(self, name: str,
                 call_handler: Optional[Callable[[Message], Message]] = None
                 ) -> int:
        """Create the node's endpoint; returns its TCP port."""
        if name in self._endpoints:
            raise TransportError(f"node {name!r} already registered")
        endpoint = _NodeEndpoint(self, name)
        self._endpoints[name] = endpoint
        if call_handler is not None:
            self._call_handlers[name] = call_handler
        return endpoint.port

    def set_link(self, a: str, b: str, model: LatencyModel) -> None:
        self.accounting.set_model(a, b, model)

    def close(self) -> None:
        for endpoint in self._endpoints.values():
            endpoint.close()
        with self._conn_lock:
            for conn in self._conns.values():
                try:
                    conn.close()
                except OSError:
                    pass
            self._conns.clear()
        self._endpoints.clear()

    # ------------------------------------------------------------------
    def _connection(self, src: str, dst: str) -> socket.socket:
        key = (src, dst)
        with self._conn_lock:
            conn = self._conns.get(key)
            if conn is None:
                endpoint = self._endpoints.get(dst)
                if endpoint is None:
                    raise TransportError(f"unknown destination node {dst!r}")
                conn = socket.create_connection(("127.0.0.1", endpoint.port),
                                                timeout=10.0)
                self._conns[key] = conn
            return conn

    def _charge(self, src: str, dst: str, size: int) -> None:
        delay = self.accounting.record(src, dst, size)
        if self.delay_scale > 0:
            _time.sleep(delay * self.delay_scale)

    def _dispatch_call(self, name: str, message: Message) -> Message:
        handler = self._call_handlers.get(name)
        if handler is None:
            raise TransportError(f"node {name!r} accepts no calls")
        return handler(message)

    # ------------------------------------------------------------------
    def send(self, message: Message) -> float:
        blob = encode(message)
        self._charge(message.src, message.dst, len(blob))
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.trace(TraceKind.MSG_SEND, time=message.time,
                            subject=f"{message.src}->{message.dst}",
                            message_kind=message.kind.value, bytes=len(blob))
        conn = self._connection(message.src, message.dst)
        with self._conn_lock:
            _send_frame(conn, blob)
        return 0.0

    def call(self, message: Message) -> Message:
        """Blocking request/response over a dedicated connection."""
        blob = encode(message)
        self._charge(message.src, message.dst, len(blob))
        endpoint = self._endpoints.get(message.dst)
        if endpoint is None:
            raise TransportError(f"unknown destination node {message.dst!r}")
        with socket.create_connection(("127.0.0.1", endpoint.port),
                                      timeout=10.0) as conn:
            _send_frame(conn, blob)
            reply = decode(_recv_frame(conn))
        self._charge(message.dst, message.src, len(encode(reply)))
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.trace(TraceKind.MSG_RECV, time=reply.time,
                            subject=f"{message.dst}->{message.src}",
                            message_kind=reply.kind.value, call=True)
        return reply

    def poll(self, name: str, *, limit: Optional[int] = None) -> List[Message]:
        endpoint = self._endpoints.get(name)
        if endpoint is None:
            raise TransportError(f"unknown node {name!r}")
        drained: List[Message] = []
        with endpoint.lock:
            while endpoint.inbox and (limit is None or len(drained) < limit):
                drained.append(endpoint.inbox.popleft())
        telemetry = self.telemetry
        if telemetry.enabled and drained:
            for message in drained:
                telemetry.trace(TraceKind.MSG_RECV, time=message.time,
                                subject=f"{message.src}->{message.dst}",
                                message_kind=message.kind.value)
        return drained

    def pending(self, name: Optional[str] = None) -> int:
        if name is not None:
            endpoint = self._endpoints.get(name)
            return len(endpoint.inbox) if endpoint else 0
        return sum(len(e.inbox) for e in self._endpoints.values())

    def __enter__(self) -> "TcpTransport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
