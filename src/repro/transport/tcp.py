"""A real socket transport over localhost TCP.

The paper's Pia nodes are separate JVM processes joined by RMI over the
Internet; this transport mirrors that deployment shape inside one machine:
each registered node owns a listening socket and a receiver thread, frames
are length-prefixed pickles, and synchronous calls block on a correlation
table.  An optional ``delay_scale`` injects a real ``sleep`` proportional
to the link's modelled latency so wall-clock behaviour can be observed,
scaled down to keep experiments tractable.

Failure handling: outbound connections are cached per directed link and
guarded by a per-connection lock, so concurrent senders to different
destinations never serialise on one global lock.  A send or call that
hits a dead socket evicts the cached connection and retries against the
transport's :class:`~repro.faults.RetryPolicy` (exponential backoff,
plan-seeded jitter when a fault injector is attached); once the attempt
budget or deadline is spent the caller sees a typed
:class:`~repro.core.errors.LinkDown` rather than a raw socket error.

The deterministic experiments use :class:`InMemoryTransport`; this class
exists to exercise the genuinely concurrent, multi-threaded deployment.
"""

from __future__ import annotations

import socket
import struct
import threading
import time as _time
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from ..core.errors import LinkDown, TransportError
from ..core.fastcopy import is_immutable
from ..faults.retry import RetryPolicy
from ..observability import NULL_TELEMETRY, TraceKind
from .accounting import NetworkAccounting
from .batch import SendBatcher
from .latency import SAME_HOST, LatencyModel
from .message import (
    BatchFrame,
    Message,
    MessageKind,
    decode,
    decode_any,
    encode,
    encode_batch,
)

_LENGTH = struct.Struct("!I")


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n:
        piece = sock.recv(n)
        if not piece:
            raise ConnectionError("peer closed")
        chunks.append(piece)
        n -= len(piece)
    return b"".join(chunks)


def _send_frame(sock: socket.socket, blob: bytes) -> None:
    sock.sendall(_LENGTH.pack(len(blob)) + blob)


def _recv_frame(sock: socket.socket) -> bytes:
    (length,) = _LENGTH.unpack(_recv_exact(sock, _LENGTH.size))
    return _recv_exact(sock, length)


class _NodeEndpoint:
    """Server socket + receiver threads for one node."""

    def __init__(self, transport: "TcpTransport", name: str) -> None:
        self.transport = transport
        self.name = name
        self.inbox: deque = deque()
        self.lock = threading.Lock()
        self.server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.server.bind(("127.0.0.1", 0))
        self.server.listen(16)
        self.port = self.server.getsockname()[1]
        self.running = True
        self.accept_thread = threading.Thread(
            target=self._accept_loop, name=f"pia-accept-{name}", daemon=True)
        self.accept_thread.start()

    def _accept_loop(self) -> None:
        while self.running:
            try:
                conn, __ = self.server.accept()
            except OSError:
                return
            threading.Thread(target=self._serve, args=(conn,),
                             name=f"pia-conn-{self.name}", daemon=True).start()

    def _serve(self, conn: socket.socket) -> None:
        try:
            while self.running:
                message = decode_any(_recv_frame(conn))
                if isinstance(message, BatchFrame):
                    with self.lock:
                        self.inbox.extend(message.messages)
                        self.inbox.extend(message.grants)
                elif message.kind in (MessageKind.SAFE_TIME_REQUEST,
                                      MessageKind.HW_CALL):
                    reply = self.transport._dispatch_call(self.name, message)
                    _send_frame(conn, encode(reply))
                else:
                    with self.lock:
                        self.inbox.append(message)
        except (ConnectionError, OSError):
            pass
        finally:
            conn.close()

    def close(self) -> None:
        self.running = False
        try:
            self.server.close()
        except OSError:
            pass


class _Connection:
    """A cached outbound socket plus its own send lock."""

    __slots__ = ("sock", "lock")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.lock = threading.Lock()


class TcpTransport:
    """Message passing between in-process nodes over real TCP sockets."""

    def __init__(self, *, default_model: LatencyModel = SAME_HOST,
                 delay_scale: float = 0.0,
                 retry_policy: Optional[RetryPolicy] = None,
                 batching: bool = False) -> None:
        self.accounting = NetworkAccounting(default_model)
        #: Multiply modelled link delay by this and really sleep (0 = off).
        self.delay_scale = delay_scale
        #: Coalesce per-destination sends into batch frames (opt-in).
        self.batching = batching
        self.batcher = SendBatcher()
        #: ``(src, dst) -> [Message]`` hook filled by an executor: extra
        #: safe-time grants to piggyback on an outgoing batch frame.
        self.piggyback_provider = None
        #: Governs reconnect attempts for dead sockets *and* retries of
        #: injected drops when a fault plane is attached.
        self.retry_policy = retry_policy or RetryPolicy()
        self._endpoints: Dict[str, _NodeEndpoint] = {}
        self._call_handlers: Dict[str, Callable[[Message], Message]] = {}
        self._conns: Dict[Tuple[str, str], _Connection] = {}
        #: Guards the connection *cache* only; frame writes serialise on
        #: each connection's own lock so independent links never contend.
        self._conn_lock = threading.Lock()
        #: Telemetry sink (attach via :meth:`attach_telemetry`).  Counter
        #: updates from receiver threads are advisory — a lost tick under
        #: contention skews a statistic, never the simulation.
        self.telemetry = NULL_TELEMETRY
        #: Fault plane (attach via :meth:`attach_faults`).
        self.fault_injector = None

    def set_piggyback_provider(self, provider) -> None:
        """Install the executor's grant source for batch flushes."""
        self.piggyback_provider = provider

    def attach_telemetry(self, telemetry) -> None:
        """Feed message traces and per-link counters to ``telemetry``."""
        self.telemetry = telemetry
        self.accounting.telemetry = telemetry
        if self.fault_injector is not None:
            self.fault_injector.telemetry = telemetry

    def attach_faults(self, injector) -> None:
        """Route every send/poll through ``injector``'s fault plane."""
        self.fault_injector = injector
        injector.telemetry = self.telemetry
        self.retry_policy = injector.retry_policy

    # ------------------------------------------------------------------
    def register(self, name: str,
                 call_handler: Optional[Callable[[Message], Message]] = None
                 ) -> int:
        """Create the node's endpoint; returns its TCP port."""
        if name in self._endpoints:
            raise TransportError(f"node {name!r} already registered")
        endpoint = _NodeEndpoint(self, name)
        self._endpoints[name] = endpoint
        if call_handler is not None:
            self._call_handlers[name] = call_handler
        return endpoint.port

    def unregister(self, name: str) -> None:
        """Tear down the node's endpoint and any cached links to it."""
        endpoint = self._endpoints.pop(name, None)
        if endpoint is not None:
            endpoint.close()
        self._call_handlers.pop(name, None)
        self.batcher.clear(name)
        with self._conn_lock:
            for key in [k for k in self._conns if name in k]:
                entry = self._conns.pop(key)
                try:
                    entry.sock.close()
                except OSError:
                    pass

    def nodes(self) -> list:
        return sorted(self._endpoints)

    def set_link(self, a: str, b: str, model: LatencyModel) -> None:
        self.accounting.set_model(a, b, model)

    def close(self) -> None:
        for endpoint in self._endpoints.values():
            endpoint.close()
        with self._conn_lock:
            for entry in self._conns.values():
                try:
                    entry.sock.close()
                except OSError:
                    pass
            self._conns.clear()
        self._endpoints.clear()

    # ------------------------------------------------------------------
    def _connection(self, src: str, dst: str) -> _Connection:
        key = (src, dst)
        with self._conn_lock:
            entry = self._conns.get(key)
            if entry is None:
                endpoint = self._endpoints.get(dst)
                if endpoint is None:
                    raise TransportError(f"unknown destination node {dst!r}")
                sock = socket.create_connection(("127.0.0.1", endpoint.port),
                                                timeout=10.0)
                entry = _Connection(sock)
                self._conns[key] = entry
            return entry

    def _evict(self, src: str, dst: str, entry: _Connection) -> None:
        """Drop a dead cached connection so the next attempt reconnects."""
        with self._conn_lock:
            if self._conns.get((src, dst)) is entry:
                del self._conns[(src, dst)]
        try:
            entry.sock.close()
        except OSError:
            pass
        if self.telemetry.enabled:
            self.telemetry.count("transport.evictions")

    def _charge(self, src: str, dst: str, size: int) -> None:
        delay = self.accounting.record(src, dst, size)
        if self.delay_scale > 0:
            _time.sleep(delay * self.delay_scale)

    def _dispatch_call(self, name: str, message: Message) -> Message:
        handler = self._call_handlers.get(name)
        if handler is None:
            raise TransportError(f"node {name!r} accepts no calls")
        return handler(message)

    def _retry_sleep(self, src: str, dst: str, retry_index: int,
                     time: float, seq: object) -> None:
        injector = self.fault_injector
        u = 0.5
        if injector is not None:
            u = injector.backoff_uniform(src, dst, retry_index)
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.count("transport.retries")
            telemetry.trace(TraceKind.RETRY, time=time,
                            subject=f"{src}->{dst}",
                            attempt=retry_index + 1, seq=seq)
        _time.sleep(self.retry_policy.backoff(retry_index, u))

    def _send_reliable(self, src: str, dst: str, blob: bytes,
                       time: float) -> None:
        """Write one frame, reconnecting through dead cached sockets."""
        policy = self.retry_policy
        attempt = 0
        start = _time.monotonic()
        while True:
            entry = None
            try:
                entry = self._connection(src, dst)
                with entry.lock:
                    _send_frame(entry.sock, blob)
                return
            except (ConnectionError, OSError) as exc:
                if entry is not None:
                    self._evict(src, dst, entry)
                attempt += 1
                exhausted = (attempt >= policy.max_attempts
                             or _time.monotonic() - start >= policy.deadline)
                if exhausted:
                    raise LinkDown(
                        f"link {src}->{dst}: send failed after {attempt} "
                        f"attempt(s): {exc}", src=src, dst=dst,
                        attempts=attempt) from exc
                self._retry_sleep(src, dst, attempt - 1, time, None)

    # ------------------------------------------------------------------
    def send(self, message: Message) -> float:
        injector = self.fault_injector
        action, ticks = "deliver", 0
        if injector is not None:
            action, ticks = injector.on_send(message)
            if action == "lost":
                return 0.0
        if self.batching and action in ("deliver", "duplicate"):
            # Queue for the next flush.  Mutable payloads are isolated
            # through a pickle round trip now so a sender mutating its
            # object between enqueue and flush cannot change what ships;
            # immutable payloads are enqueued as-is (copy elision).
            if is_immutable(message.payload):
                member = message
            else:
                member = decode(encode(message))
            if message.dst not in self._endpoints:
                raise TransportError(
                    f"unknown destination node {message.dst!r}")
            telemetry = self.telemetry
            if telemetry.enabled:
                telemetry.trace(TraceKind.MSG_SEND, time=message.time,
                                subject=f"{message.src}->{message.dst}",
                                message_kind=message.kind.value, batched=True)
            self.batcher.enqueue(message.src, message.dst, member)
            if action == "duplicate":
                self.batcher.enqueue(message.src, message.dst, member)
                injector.expect_duplicate(message.dst, member.msg_id)
            if injector is not None:
                late = injector.take_swaps(message.src, message.dst)
                if late:
                    self.batcher.extend(message.src, message.dst, late)
            return 0.0
        blob = encode(message)
        self._charge(message.src, message.dst, len(blob))
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.trace(TraceKind.MSG_SEND, time=message.time,
                            subject=f"{message.src}->{message.dst}",
                            message_kind=message.kind.value, bytes=len(blob))
        if action == "delay":
            injector.hold(message.dst, decode(blob), ticks)
            return 0.0
        if action == "reorder":
            injector.hold_swap(message.src, message.dst, decode(blob))
            return 0.0
        self._send_reliable(message.src, message.dst, blob, message.time)
        if action == "duplicate":
            self._charge(message.src, message.dst, len(blob))
            self._send_reliable(message.src, message.dst, blob, message.time)
            injector.expect_duplicate(message.dst, message.msg_id)
        if injector is not None:
            for late in injector.take_swaps(message.src, message.dst):
                self._send_reliable(message.src, message.dst, encode(late),
                                    message.time)
        return 0.0

    def flush_batches(self, *, src: Optional[str] = None,
                      dst: Optional[str] = None) -> int:
        """Ship matching queued batches: one frame, one ``sendall``, one
        latency charge per non-empty link.  Returns the number of logical
        messages flushed."""
        if not self.batching:
            return 0
        flushed = 0
        provider = self.piggyback_provider
        telemetry = self.telemetry
        for (s, d), members in self.batcher.take(src=src, dst=dst):
            if d not in self._endpoints:
                continue    # destination unregistered after enqueue
            grants = provider(s, d) if provider is not None else []
            blob = encode_batch(BatchFrame(s, d, members, grants))
            delay = self.accounting.record_frame(s, d, len(blob),
                                                 len(members))
            if self.delay_scale > 0:
                _time.sleep(delay * self.delay_scale)
            if telemetry.enabled and grants:
                telemetry.count("safetime.piggyback_sent", len(grants))
            self._send_reliable(s, d, blob, members[-1].time)
            flushed += len(members)
        return flushed

    def push_grants(self, src: str, dst: str,
                    grants: List[Message]) -> bool:
        """Ship a standalone grant-only frame ``src``→``dst`` — one frame
        instead of the stalled peer's two-frame request round trip."""
        if not self.batching or not grants:
            return False
        if dst not in self._endpoints:
            return False
        blob = encode_batch(BatchFrame(src, dst, [], list(grants)))
        delay = self.accounting.record_frame(src, dst, len(blob), 0)
        if self.delay_scale > 0:
            _time.sleep(delay * self.delay_scale)
        self._send_reliable(src, dst, blob, grants[-1].time)
        return True

    def call(self, message: Message) -> Message:
        """Blocking request/response over a dedicated connection.

        Connection failures (refused, reset, peer gone) are retried per
        the retry policy; exhaustion raises :class:`LinkDown` so callers
        never see a raw socket error for a dead peer.
        """
        if self.fault_injector is not None:
            self.fault_injector.check_call(message)
        if self.batching:
            # A call is a synchronisation point on this link: queued
            # traffic either way lands first, as in the unbatched run.
            self.flush_batches(src=message.src, dst=message.dst)
            self.flush_batches(src=message.dst, dst=message.src)
        endpoint = self._endpoints.get(message.dst)
        if endpoint is None:
            raise TransportError(f"unknown destination node {message.dst!r}")
        blob = encode(message)
        self._charge(message.src, message.dst, len(blob))
        policy = self.retry_policy
        attempt = 0
        start = _time.monotonic()
        while True:
            try:
                with socket.create_connection(
                        ("127.0.0.1", endpoint.port), timeout=10.0) as conn:
                    _send_frame(conn, blob)
                    reply = decode(_recv_frame(conn))
                break
            except (ConnectionError, OSError) as exc:
                attempt += 1
                exhausted = (attempt >= policy.max_attempts
                             or _time.monotonic() - start >= policy.deadline)
                if exhausted:
                    raise LinkDown(
                        f"call {message.src}->{message.dst} failed after "
                        f"{attempt} attempt(s): {exc}", src=message.src,
                        dst=message.dst, attempts=attempt) from exc
                self._retry_sleep(message.src, message.dst, attempt - 1,
                                  message.time, "call")
        self._charge(message.dst, message.src, len(encode(reply)))
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.trace(TraceKind.MSG_RECV, time=reply.time,
                            subject=f"{message.dst}->{message.src}",
                            message_kind=reply.kind.value, call=True)
        return reply

    def poll(self, name: str, *, limit: Optional[int] = None) -> List[Message]:
        endpoint = self._endpoints.get(name)
        if endpoint is None:
            raise TransportError(f"unknown node {name!r}")
        if self.batching:
            # Flush traffic bound for this node; frames arrive via the
            # receiver thread, so they may only be drained by a later
            # poll — the polling loops already spin until quiescent.
            self.flush_batches(dst=name)
        injector = self.fault_injector
        drained: List[Message] = []
        with endpoint.lock:
            if injector is not None:
                endpoint.inbox.extend(injector.release_due(name))
            while endpoint.inbox and (limit is None or len(drained) < limit):
                message = endpoint.inbox.popleft()
                if injector is not None and \
                        injector.suppress_duplicate(name, message):
                    continue
                drained.append(message)
        telemetry = self.telemetry
        if telemetry.enabled and drained:
            for message in drained:
                telemetry.trace(TraceKind.MSG_RECV, time=message.time,
                                subject=f"{message.src}->{message.dst}",
                                message_kind=message.kind.value)
        return drained

    def pending(self, name: Optional[str] = None) -> int:
        held = self.batcher.pending(name)
        if self.fault_injector is not None:
            held += self.fault_injector.held_pending(name)
        if name is not None:
            endpoint = self._endpoints.get(name)
            return (len(endpoint.inbox) if endpoint else 0) + held
        return sum(len(e.inbox) for e in self._endpoints.values()) + held

    def flush(self) -> int:
        """Drop every undelivered message (rollback support)."""
        dropped = 0
        for endpoint in self._endpoints.values():
            with endpoint.lock:
                dropped += len(endpoint.inbox)
                endpoint.inbox.clear()
        dropped += self.batcher.clear()
        if self.fault_injector is not None:
            dropped += self.fault_injector.flush()
        return dropped

    def __enter__(self) -> "TcpTransport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
