"""Multi-page browsing sessions through the WubbleU system."""

import pytest

from repro.apps import WubbleUConfig, build_local, build_split, run_page_load
from repro.transport import LAN

SMALL = dict(total_bytes=12_000, image_count=2, image_size=48)


class TestBrowsingSession:
    def test_three_loads_complete_in_order(self):
        config = WubbleUConfig(level="packet", page_loads=3, **SMALL)
        cosim, __, page = build_local(config)
        result = run_page_load(cosim, location="local", level="packet")
        ui = cosim.component("UI")
        times = [t for t, __ in ui.history]
        assert len(times) == 3
        assert times == sorted(times)
        assert times[0] < times[1] < times[2]
        browser = cosim.component("Browser")
        assert browser.pages_loaded == 3
        assert browser.bytes_received == 3 * page.total_bytes
        origin = cosim.component("Origin")
        assert origin.requests_served == 3 * (1 + len(page.images))

    def test_session_over_split_topology(self):
        config = WubbleUConfig(level="packet", page_loads=2, **SMALL)
        cosim, __, page = build_split(config, network=LAN)
        run_page_load(cosim, location="remote", level="packet")
        ui = cosim.component("UI")
        assert len(ui.history) == 2
        assert cosim.component("NetIf").frames_down == 2 * (1 + len(page.images))

    def test_session_matches_local_virtual_times(self):
        def times(builder, **kw):
            config = WubbleUConfig(level="packet", page_loads=2, **SMALL)
            cosim, __, ___ = builder(config, **kw)
            run_page_load(cosim, location="x", level="packet")
            return [t for t, __ in cosim.component("UI").history]

        assert times(build_local) == pytest.approx(
            times(build_split, network=LAN))

    def test_amortisation(self):
        """Later loads cost no more virtual time than the first (no state
        leaks between rounds)."""
        config = WubbleUConfig(level="packet", page_loads=3, **SMALL)
        cosim, __, ___ = build_local(config)
        run_page_load(cosim, location="local", level="packet")
        times = [t for t, __ in cosim.component("UI").history]
        first = times[0]
        gaps = [b - a for a, b in zip(times, times[1:])]
        for gap in gaps:
            assert gap <= first * 1.1
