"""The JPEG-flavoured codec and the HTML substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import jpeg
from repro.apps.html import Document, parse, parse_cost, tokenize
from repro.core import SimulationError


class TestJpegCodec:
    def test_roundtrip_quality(self):
        image = jpeg.synthetic_image(64, 64, seed=3)
        blob = jpeg.encode(image, quality=50)
        decoded = jpeg.decode(blob)
        assert decoded.shape == image.shape
        assert jpeg.psnr(image, decoded) > 24.0

    def test_higher_quality_bigger_and_better(self):
        image = jpeg.synthetic_image(64, 64, seed=5)
        low = jpeg.encode(image, quality=20)
        high = jpeg.encode(image, quality=90)
        assert len(high) > len(low)
        assert jpeg.psnr(image, jpeg.decode(high)) > \
            jpeg.psnr(image, jpeg.decode(low))

    def test_compresses(self):
        image = jpeg.synthetic_image(128, 128, seed=1)
        blob = jpeg.encode(image, quality=50)
        assert len(blob) < image.size / 2

    def test_flat_image_is_tiny(self):
        image = np.full((32, 32), 128, dtype=np.uint8)
        blob = jpeg.encode(image)
        assert len(blob) < 300
        assert jpeg.psnr(image, jpeg.decode(blob)) > 40

    def test_info_header(self):
        image = jpeg.synthetic_image(48, 24, seed=0)
        header = jpeg.info(jpeg.encode(image, quality=66))
        assert (header.width, header.height) == (48, 24)
        assert header.quality == 66
        assert header.blocks == (48 // 8) * (24 // 8)

    def test_deterministic_encoding(self):
        image = jpeg.synthetic_image(40, 40, seed=9)
        assert jpeg.encode(image) == jpeg.encode(image)

    def test_bad_dimensions(self):
        with pytest.raises(SimulationError):
            jpeg.encode(np.zeros((10, 10), dtype=np.uint8))

    def test_bad_quality(self):
        with pytest.raises(SimulationError):
            jpeg.encode(np.zeros((8, 8), dtype=np.uint8), quality=0)

    def test_bad_magic(self):
        with pytest.raises(SimulationError):
            jpeg.decode(b"nope")
        with pytest.raises(SimulationError):
            jpeg.info(b"nope")

    def test_truncated_stream(self):
        image = jpeg.synthetic_image(16, 16)
        blob = jpeg.encode(image)
        with pytest.raises(SimulationError):
            jpeg.decode(blob[: len(blob) // 2])

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=50)
    def test_varint_roundtrip(self, value):
        from repro.apps.jpeg import _read_varint, _write_varint
        for signed in (value, -value):
            out = bytearray()
            _write_varint(out, signed)
            back, pos = _read_varint(bytes(out), 0)
            assert back == signed
            assert pos == len(out)

    @given(st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_shapes(self, blocks, seed):
        size = 8 * blocks
        image = jpeg.synthetic_image(size, size, seed=seed)
        decoded = jpeg.decode(jpeg.encode(image))
        assert decoded.shape == image.shape
        assert decoded.dtype == np.uint8


class TestHtml:
    PAGE = (b"<html><head><title>Hi</title></head><body>"
            b"<!-- note --><h1 class='x'>Head</h1>"
            b"<img src='/a.pj1'><img src=\"/b.pj1\" alt=pic>"
            b"<a href='/next'>go</a>some text</body></html>")

    def test_tokenize_kinds(self):
        kinds = [t.kind for t in tokenize(self.PAGE.decode())]
        assert "comment" in kinds
        assert "endtag" in kinds
        assert kinds.count("text") >= 3

    def test_parse_extracts_structure(self):
        doc = parse(self.PAGE)
        assert doc.title == "Hi"
        assert doc.images == ["/a.pj1", "/b.pj1"]
        assert doc.links == ["/next"]
        assert doc.text_bytes > 0
        assert doc.token_count > 8

    def test_attribute_forms(self):
        tokens = list(tokenize('<img src="/q.png" alt=\'x y\' width=8>'))
        attrs = dict(tokens[0].attrs)
        assert attrs == {"src": "/q.png", "alt": "x y", "width": "8"}

    def test_malformed_markup_never_raises(self):
        for ugly in ["<", "<>", "a<b", "<x", "<!-- unterminated",
                     "</lonely>", "<img src=>"]:
            list(tokenize(ugly))
            parse(ugly.encode())

    def test_self_closing(self):
        tokens = list(tokenize("<br/><img src='/a'/>"))
        assert tokens[0].value == "br"
        assert dict(tokens[1].attrs)["src"] == "/a"

    def test_costs_scale_with_input(self):
        small = parse_cost(b"x" * 100)
        large = parse_cost(b"x" * 10_000)
        assert large["alu"] == 100 * small["alu"]
        doc = parse(self.PAGE)
        assert doc.layout_cost()["alu"] > 0

    def test_non_utf8_rejected(self):
        with pytest.raises(SimulationError):
            parse(b"\xff\xfe\x00bad")
