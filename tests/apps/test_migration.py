"""Gradual migration to hardware: the modem chip swap (paper section 1)."""

import pytest

from repro.apps import (
    HardwareBackedModem,
    ModemChip,
    WubbleUConfig,
    build_local,
    build_split,
    run_page_load,
)
from repro.core import HardwareStubError
from repro.transport import LAN

SMALL = dict(total_bytes=12_000, image_count=2, image_size=48)


def config(backend, **overrides):
    params = dict(SMALL)
    params.update(overrides)
    return WubbleUConfig(level="packet", modem_backend=backend, **params)


class TestModemChip:
    def test_job_timing(self):
        chip = ModemChip(clock_hz=10e6, setup_ticks=100, ticks_per_byte=2)
        chip.poke(0x8, 50)                  # 100 + 50*2 = 200 ticks
        assert chip.peek(0x4) == 1          # busy
        records = chip.run_for(199)
        assert records == []
        records = chip.run_for(1)
        assert len(records) == 1
        assert records[0].tick == 200
        assert records[0].payload == 50
        assert chip.peek(0x4) == 0          # idle again
        assert chip.jobs_done == 1

    def test_single_job_at_a_time(self):
        chip = ModemChip()
        chip.poke(0x8, 10)
        with pytest.raises(HardwareStubError):
            chip.poke(0x8, 10)

    def test_bad_register_access(self):
        chip = ModemChip()
        with pytest.raises(HardwareStubError):
            chip.poke(0x0, 1)
        with pytest.raises(HardwareStubError):
            chip.peek(0x99)
        with pytest.raises(HardwareStubError):
            chip.poke(0x8, 0)

    def test_state_save_roundtrip(self):
        chip = ModemChip()
        chip.poke(0x8, 100)
        chip.run_for(50)
        state = chip.save_state()
        chip.run_for(10_000)
        assert chip.jobs_done == 1
        chip.restore_state(state)
        assert chip.peek(0x4) == 1          # busy again, mid-job
        assert chip.jobs_done == 0

    def test_frame_seconds(self):
        chip = ModemChip(clock_hz=10e6, setup_ticks=240, ticks_per_byte=4)
        assert chip.frame_seconds(100) == pytest.approx((240 + 400) / 10e6)

    def test_stall(self):
        chip = ModemChip(setup_ticks=0, ticks_per_byte=1)
        chip.poke(0x8, 5)
        chip.stall()
        assert chip.run_for(100) == []
        chip.resume()
        assert len(chip.run_for(5)) == 1


class TestMigratedSystem:
    def test_hardware_backed_load_delivers_the_page(self):
        cosim, __, page = build_local(config("hardware"))
        result = run_page_load(cosim, location="local", level="packet")
        assert result.bytes_loaded == page.total_bytes
        netif = cosim.component("NetIf")
        assert isinstance(netif, HardwareBackedModem)
        assert netif.stub.jobs_done == netif.frames_up + netif.frames_down

    def test_same_payload_as_software_model(self):
        """The migration criterion: the system still works identically at
        the observable level; only the chip's timing is now measured from
        hardware ticks rather than estimated."""
        model_cosim, __, ___ = build_local(config("model"))
        model = run_page_load(model_cosim, location="local", level="packet")
        hw_cosim, __, ___ = build_local(config("hardware"))
        hardware = run_page_load(hw_cosim, location="local", level="packet")
        assert hardware.bytes_loaded == model.bytes_loaded
        assert model_cosim.component("UI").summary == \
            hw_cosim.component("UI").summary
        # timing differs (estimate vs measured ticks) but stays same-order
        ratio = hardware.virtual_time / model.virtual_time
        assert 0.2 < ratio < 5.0

    def test_hardware_modem_in_split_topology(self):
        """Migration composes with distribution: the fabricated chip on
        the remote node, just like Fig. 6's remote operation."""
        cosim, deployment, page = build_split(config("hardware"),
                                              network=LAN)
        result = run_page_load(cosim, location="remote", level="packet")
        assert result.bytes_loaded == page.total_bytes
        assert result.messages > 0

    def test_hardware_modem_supports_checkpoints(self):
        cosim, __, ___ = build_local(config("hardware"))
        cosim.start()
        cosim.run(until=0.05)
        snap_id = cosim.snapshot()
        cosim.run()
        ui_after = cosim.component("UI").page_loaded_at
        cosim.recovery.rollback_to(cosim.registry.snapshots[snap_id])
        assert cosim.component("UI").page_loaded_at is None
        cosim.run()
        assert cosim.component("UI").page_loaded_at == ui_after

    def test_unknown_backend_rejected(self):
        from repro.apps import build_design
        from repro.core import SimulationError
        with pytest.raises(SimulationError):
            build_design(config("quantum"))
