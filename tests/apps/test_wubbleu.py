"""The WubbleU system: content, framing, local and split page loads."""

import pytest

from repro.apps import (
    ASSIGN_SPLIT,
    WubbleUConfig,
    build_design,
    build_local,
    build_page,
    build_split,
    encode_request,
    encode_response,
    fetch_like_hotjava,
    page_load,
    parse_request,
    parse_response,
    run_page_load,
)
from repro.core import SimulationError
from repro.distributed import ChannelMode
from repro.transport import LAN

#: A small page keeps unit tests fast; benchmarks use the full 66 KB.
SMALL = dict(total_bytes=12_000, image_count=2, image_size=48)


def small_config(level="packet", **overrides) -> WubbleUConfig:
    params = dict(SMALL)
    params.update(overrides)
    return WubbleUConfig(level=level, **params)


class TestContent:
    def test_exact_budget(self):
        page = build_page(total_bytes=30_000, image_count=3, image_size=64)
        assert page.total_bytes == 30_000

    def test_paper_page_is_66kb(self):
        page = build_page()
        assert page.total_bytes == 66_000
        assert len(page.images) == 4

    def test_resources_resolvable(self):
        page = build_page(**{**SMALL})
        for path in page.paths():
            assert page.resource(path)
        with pytest.raises(SimulationError):
            page.resource("/nothere")

    def test_images_too_big_rejected(self):
        with pytest.raises(SimulationError):
            build_page(total_bytes=1_000, image_count=4, image_size=160)

    def test_html_references_all_images(self):
        from repro.apps.html import parse
        page = build_page(**{**SMALL})
        doc = parse(page.html)
        assert sorted(doc.images) == sorted(page.images)


class TestFraming:
    def test_request_roundtrip(self):
        assert parse_request(encode_request("/index.html")) == "/index.html"

    def test_response_roundtrip(self):
        body = b"\x00\x01payload"
        assert parse_response(encode_response(body)) == body

    def test_malformed_request(self):
        with pytest.raises(SimulationError):
            parse_request(b"POST / HTTP/1.1\r\n\r\n")

    def test_length_mismatch(self):
        good = encode_response(b"abcdef")
        with pytest.raises(SimulationError):
            parse_response(good[:-1])


class TestLocalPageLoad:
    def test_page_loads_completely(self):
        cosim, __, page = build_local(small_config())
        result = run_page_load(cosim, location="local", level="packet")
        assert result.bytes_loaded == page.total_bytes
        assert result.virtual_time > 0
        assert result.messages == 0          # nothing left the node
        ui = cosim.component("UI")
        assert ui.summary["images"] == 2
        assert "Pia" in ui.summary["title"]

    def test_all_levels_same_payload(self):
        loads = {}
        for level in ("word", "packet", "transaction"):
            cosim, __, page = build_local(small_config(level))
            result = run_page_load(cosim, location="local", level=level)
            loads[level] = result
            assert result.bytes_loaded == page.total_bytes
        # finer detail => strictly more events
        assert loads["word"].events > loads["packet"].events \
            > loads["transaction"].events

    def test_virtual_time_identical_across_configs(self):
        """Detail level changes rendering granularity, and distribution
        changes where things run — the *simulated* behaviour keeps the
        same virtual timing within the codec's timing model."""
        cosim_a, __, ___ = build_local(small_config("packet"))
        a = run_page_load(cosim_a, location="local", level="packet")
        cosim_b, __, ___ = build_split(small_config("packet"), network=LAN)
        b = run_page_load(cosim_b, location="remote", level="packet")
        assert a.virtual_time == pytest.approx(b.virtual_time)
        assert a.bytes_loaded == b.bytes_loaded

    def test_modem_and_server_stats(self):
        cosim, __, ___ = build_local(small_config())
        run_page_load(cosim, location="local", level="packet")
        netif = cosim.component("NetIf")
        server = cosim.component("Server")
        origin = cosim.component("Origin")
        stack = cosim.component("Stack")
        assert netif.frames_up == netif.frames_down == 3   # page + 2 images
        assert server.requests_proxied == 3
        assert origin.requests_served == 3
        assert stack.requests_handled == 3
        assert stack.irq_count > 0


class TestSplitPageLoad:
    def test_remote_traffic_is_accounted(self):
        cosim, deployment, __ = build_split(small_config(), network=LAN)
        result = run_page_load(cosim, location="remote", level="packet")
        assert result.messages > 0
        assert result.network_delay > 0
        assert set(deployment.splits) == {"bus_fwd", "bus_bwd", "netirq"}

    def test_word_level_floods_the_wire(self):
        word = page_load("word", remote=True, network=LAN,
                         config=small_config("word"))
        packet = page_load("packet", remote=True, network=LAN,
                           config=small_config("packet"))
        assert word.messages > 20 * packet.messages
        assert word.network_delay > 5 * packet.network_delay

    def test_optimistic_split_matches_conservative(self):
        conservative = page_load("packet", remote=True, network=LAN,
                                 config=small_config())
        optimistic = page_load("packet", remote=True, network=LAN,
                               mode=ChannelMode.OPTIMISTIC,
                               config=small_config())
        assert optimistic.virtual_time == \
            pytest.approx(conservative.virtual_time)
        assert optimistic.bytes_loaded == conservative.bytes_loaded


class TestRunlevelSwitching:
    def test_switchpoint_changes_level_mid_run(self):
        """The paper's headline trick: drop detail on the remote link
        while the bulk transfer happens."""
        cosim, __, ___ = build_local(small_config("word"))
        cosim.add_switchpoint(
            "when Stack.localtime >= 0.02: "
            "Stack.bus -> packet, NetIf.bus -> packet")
        result = run_page_load(cosim, location="local", level="mixed")
        stack = cosim.component("Stack")
        assert stack.interface("bus").level == "packet"
        # Fewer events than pure word level, more than pure packet.
        cosim_w, __, ___ = build_local(small_config("word"))
        pure_word = run_page_load(cosim_w, location="local", level="word")
        assert result.events < pure_word.events

    def test_slider_over_the_link(self):
        cosim, __, ___ = build_local(small_config("word"))
        slider = cosim.slider(["Stack.bus", "NetIf.bus"],
                              ["transaction", "packet", "word"])
        slider.set(1)
        assert cosim.component("Stack").interface("bus").level == "packet"


class TestHotJavaReference:
    def test_reference_loads_everything(self):
        page = build_page(**{**SMALL})
        result = fetch_like_hotjava(page)
        assert result.bytes_loaded == page.total_bytes
        assert result.images_decoded == 2
        assert result.wall_seconds < 1.0

    def test_reference_much_faster_than_simulation(self):
        page = build_page(**{**SMALL})
        ref = fetch_like_hotjava(page)
        sim = page_load("word", remote=False, config=small_config("word"))
        assert sim.cpu_seconds > ref.wall_seconds
