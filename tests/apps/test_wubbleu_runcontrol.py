"""The shipped WubbleU run-control file drives the real system."""

import os

import pytest

from repro.apps import WubbleUConfig, build_split
from repro.core.runcontrol import load
from repro.transport import LAN

RUNCONTROL = os.path.join(os.path.dirname(__file__), "..", "..",
                          "examples", "wubbleu.runcontrol")

SMALL = dict(total_bytes=12_000, image_count=2, image_size=48)


@pytest.fixture(scope="module")
def loaded():
    return load(RUNCONTROL)


class TestShippedFile:
    def test_parses(self, loaded):
        assert loaded.runlevels == {"Stack.bus": "word",
                                    "NetIf.bus": "word"}
        assert len(loaded.switchpoints) == 1
        assert "link" in loaded.sliders
        assert loaded.checkpoint_interval == 0.2
        assert loaded.until == 2.0

    def test_drives_the_split_system(self, loaded):
        cosim, __, page = build_split(WubbleUConfig(level="packet", **SMALL),
                                      network=LAN)
        sliders = loaded.apply(cosim)
        # initial levels from the file override the builder's
        assert cosim.component("Stack").interface("bus").level == "word"
        cosim.run(until=loaded.until)
        ui = cosim.component("UI")
        assert ui.page_loaded_at is not None
        assert ui.page_loaded_at <= loaded.until
        # the selective-focus switchpoint fired mid-load
        assert cosim.component("Stack").interface("bus").level == "packet"
        assert len(cosim.switchpoints.history) == 1
        # the checkpoint cadence produced snapshots
        assert cosim.registry.completed()
        # and the slider is live for interactive use
        assert sliders["link"].levels == ["transaction", "packet", "word"]

    def test_selective_focus_saved_traffic(self, loaded):
        baseline_cosim, __, ___ = build_split(
            WubbleUConfig(level="word", **SMALL), network=LAN)
        baseline_cosim.run()
        baseline = baseline_cosim.transport.accounting.total_messages

        controlled_cosim, __, ___ = build_split(
            WubbleUConfig(level="packet", **SMALL), network=LAN)
        loaded.apply(controlled_cosim)
        controlled_cosim.run(until=loaded.until)
        controlled = controlled_cosim.transport.accounting.total_messages
        assert controlled < baseline / 3
