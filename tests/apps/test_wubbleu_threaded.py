"""WubbleU on the thread-per-node executor: the paper's real deployment.

The evaluation ran the split WubbleU on two workstations as separate
processes; this test runs the same split on two OS threads joined by the
transport, and checks the result matches the deterministic cooperative
executor."""

import pytest

from repro.apps import ASSIGN_SPLIT, WubbleUConfig, build_design
from repro.distributed import ThreadedCoSimulation
from repro.distributed.partition import deploy as coop_deploy

SMALL = dict(total_bytes=8_000, image_count=1, image_size=48)


def _deploy_threaded(config):
    """Hand-roll the split deployment on the threaded runner (deploy()
    targets the cooperative executor's node factory)."""
    design, page = build_design(config)
    runner = ThreadedCoSimulation()
    handheld = runner.add_subsystem(runner.add_node("host-a"), "handheld")
    cellsite = runner.add_subsystem(runner.add_node("host-b"), "cellsite")
    homes = {"handheld": handheld, "cellsite": cellsite}
    for name, component in design.components.items():
        homes[ASSIGN_SPLIT[name]].add(component)
    channel = None
    for spec in sorted(design.nets.values(), key=lambda s: s.name):
        sides = {}
        for comp_name, port_name in spec.endpoints:
            home = ASSIGN_SPLIT[comp_name]
            sides.setdefault(home, []).append(
                design.components[comp_name].port(port_name))
        if len(sides) == 1:
            home = next(iter(sides))
            homes[home].wire(spec.name, *sides[home], delay=spec.delay)
            continue
        if channel is None:
            channel = runner.connect(handheld, cellsite)
        halves = {}
        for home, ports in sides.items():
            halves[home] = homes[home].wire(spec.name, *ports,
                                            delay=spec.delay)
        channel.split_net(halves["handheld"], halves["cellsite"])
    return runner, design, page


def test_threaded_split_matches_cooperative():
    config = WubbleUConfig(level="packet", **SMALL)
    runner, design, page = _deploy_threaded(config)
    runner.run(timeout=90.0)
    ui = design.components["UI"]
    assert ui.page_loaded_at is not None
    threaded_time = ui.page_loaded_at
    threaded_bytes = design.components["Browser"].bytes_received
    assert threaded_bytes == page.total_bytes

    # cooperative reference
    from repro.distributed import CoSimulation
    config2 = WubbleUConfig(level="packet", **SMALL)
    design2, page2 = build_design(config2)
    cosim = CoSimulation()
    coop_deploy(design2, ASSIGN_SPLIT, cosim)
    cosim.run()
    assert design2.components["UI"].page_loaded_at == \
        pytest.approx(threaded_time)
