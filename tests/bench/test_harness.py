"""The benchmark harness itself: tables, formatting, shape assertions."""

import math
import os

import pytest

from repro.bench import (
    PAPER_TABLE1,
    Table,
    assert_factor,
    assert_order,
    format_bytes,
    format_count,
    format_seconds,
    ratio,
    ring_of_pairs,
    streaming_pair,
)


class TestFormatting:
    @pytest.mark.parametrize("value,expected", [
        (None, "n/a"),
        (0, "0 s"),
        (5e-7, "0.5 us"),
        (2.5e-3, "2.5 ms"),
        (0.75, "750.0 ms"),
        (43.1, "43.10 s"),
        (604.0, "604 s"),
    ])
    def test_format_seconds(self, value, expected):
        assert format_seconds(value) == expected

    @pytest.mark.parametrize("value,expected", [
        (100, "100 B"),
        (4096, "4.0 KB"),
        (5 * 1024 * 1024, "5.00 MB"),
    ])
    def test_format_bytes(self, value, expected):
        assert format_bytes(value) == expected

    @pytest.mark.parametrize("value,expected", [
        (999, "999"),
        (66_300, "66.3k"),
        (12_000_000, "12.00M"),
    ])
    def test_format_count(self, value, expected):
        assert format_count(value) == expected


class TestTable:
    def test_render_alignment(self):
        table = Table("demo", ["name", "value"])
        table.add("short", 1)
        table.add("a-much-longer-name", 12345)
        table.note("a note")
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "== demo =="
        assert lines[1].startswith("name")
        assert set(lines[2]) == {"-"}
        assert "a-much-longer-name" in text
        assert "* a note" in text

    def test_wrong_arity_rejected(self):
        table = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add("only-one")

    def test_save_writes_file(self, tmp_path, monkeypatch):
        monkeypatch.setenv("PIA_BENCH_RESULTS", str(tmp_path))
        table = Table("demo", ["a"])
        table.add("x")
        path = table.save("demo_table")
        assert os.path.exists(path)
        assert "== demo ==" in open(path).read()


class TestShapeAssertions:
    def test_assert_order(self):
        assert_order({"a": 1.0, "b": 2.0, "c": 3.0}, "a", "b", "c")
        with pytest.raises(AssertionError):
            assert_order({"a": 2.0, "b": 1.0}, "a", "b")

    def test_assert_factor(self):
        assert_factor({"small": 1.0, "big": 10.0}, "small", "big", 5.0)
        with pytest.raises(AssertionError):
            assert_factor({"small": 1.0, "big": 3.0}, "small", "big", 5.0)

    def test_ratio(self):
        assert ratio({"a": 10.0, "b": 2.0}, "a", "b") == 5.0
        assert ratio({"a": 1.0, "b": 0.0}, "a", "b") == math.inf

    def test_paper_values_present(self):
        assert PAPER_TABLE1["HotJava"] == 0.54
        assert PAPER_TABLE1["remote word passage"] == 604.0
        assert PAPER_TABLE1["local word passage"] is None


class TestWorkloads:
    def test_streaming_pair_delivers(self):
        cosim = streaming_pair(5, 1.0)
        cosim.run()
        assert [v for __, v in cosim.component("consumer").received] == \
            list(range(5))

    def test_streaming_pair_with_busy_work(self):
        cosim = streaming_pair(3, 1.0, consumer_work=10.0)
        cosim.run()
        assert len(cosim.component("consumer").received) == 3
        assert "busy" in cosim.subsystem("a-consumer").components

    def test_ring_of_pairs_chain(self):
        cosim = ring_of_pairs(4, messages_each=5)
        cosim.run()
        assert cosim.component("c3").seen == 5
        cosim.validate_topology()
