"""The system activity report."""

import pytest

from repro.apps import WubbleUConfig, build_local, build_split, run_page_load
from repro.bench.report import ActivityReport, activity_report
from repro.core import Advance, FunctionComponent, Receive, Send, Simulator
from repro.transport import LAN

SMALL = dict(total_bytes=12_000, image_count=2, image_size=48)


class TestSingleHostReport:
    def _run(self):
        sim = Simulator("demo")

        def produce(comp):
            for i in range(3):
                yield Advance(1.0)
                yield Send("out", i)

        def consume(comp):
            for __ in range(3):
                yield Receive("in")

        p = sim.add(FunctionComponent("p", produce, ports={"out": "out"}))
        c = sim.add(FunctionComponent("c", consume, ports={"in": "in"}))
        sim.wire("w", p.port("out"), c.port("in"))
        sim.run()
        sim.checkpoint()
        return sim

    def test_collects_everything(self):
        report = activity_report(self._run())
        assert report.title == "demo"
        assert [row["name"] for row in report.components] == ["c", "p"]
        assert report.subsystems[0]["checkpoints"] == 1
        assert report.nets[0]["posts"] == 3
        statuses = {row["name"]: row["status"] for row in report.components}
        assert statuses == {"p": "finished", "c": "finished"}

    def test_render_contains_tables(self):
        text = activity_report(self._run()).render()
        assert "demo: subsystems" in text
        assert "demo: components" in text
        assert "demo: nets" in text


class TestDistributedReport:
    def test_wubbleu_split_report(self):
        cosim, __, ___ = build_split(WubbleUConfig(level="packet", **SMALL),
                                     network=LAN)
        run_page_load(cosim, location="remote", level="packet")
        report = activity_report(cosim, title="wubbleu")
        names = {row["name"] for row in report.components}
        assert {"UI", "Browser", "NetIf", "Origin"} <= names
        assert not any(name.startswith("__channel") for name in names)
        assert len(report.channels) == 2           # one endpoint per side
        for row in report.channels:
            assert row["mode"] == "conservative"
            assert row["forwarded"] > 0 or row["injected"] > 0
        interfaces = {row["name"]: row for row in report.interfaces}
        assert interfaces["NetIf.bus"]["payload"] >= 12_000
        text = report.render()
        assert "wubbleu: channels" in text

    def test_local_wubbleu_has_no_channels(self):
        cosim, __, ___ = build_local(WubbleUConfig(level="packet", **SMALL))
        run_page_load(cosim, location="local", level="packet")
        report = activity_report(cosim)
        assert report.channels == []


class TestErrors:
    def test_wrong_target_type(self):
        with pytest.raises(TypeError):
            activity_report(42)
