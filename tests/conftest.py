"""Repo-wide test fixtures."""

import pytest


@pytest.fixture(autouse=True)
def _isolate_bench_files(tmp_path, monkeypatch):
    """Keep test runs out of the checked-in bench trajectory files.

    ``repro.bench.record`` merges results into a JSON file at the repo
    root (the measured-curves trajectory committed per PR) and
    ``Table.save`` mirrors every saved table through it — so any test
    that exercises the bench harness would silently edit the committed
    history.  Both env overrides are read at call time, so pointing them
    at ``tmp_path`` redirects every recording a test triggers.
    """
    monkeypatch.setenv("PIA_BENCH_JSON", str(tmp_path / "bench.json"))
    monkeypatch.setenv("PIA_BENCH_RESULTS", str(tmp_path / "results"))
