"""Edge cases of the construction APIs: wiring mistakes, lookups,
subsystem and simulator facade behaviour, sync tables."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Advance,
    ConfigurationError,
    ConsistencyViolation,
    FunctionComponent,
    Net,
    Port,
    PortDirection,
    Simulator,
    Subsystem,
    SyncPolicy,
    SyncTable,
)


def idle(comp):
    yield Advance(1.0)


class TestWiringErrors:
    def test_duplicate_port(self):
        comp = FunctionComponent("c", idle)
        comp.add_port("p")
        with pytest.raises(ConfigurationError):
            comp.add_port("p")

    def test_unknown_port_lookup(self):
        comp = FunctionComponent("c", idle)
        with pytest.raises(ConfigurationError):
            comp.port("ghost")

    def test_port_single_net(self):
        comp = FunctionComponent("c", idle)
        port = comp.add_port("p")
        Net("n1").connect(port)
        with pytest.raises(ConfigurationError):
            Net("n2").connect(port)

    def test_net_reconnect_same_is_idempotent(self):
        comp = FunctionComponent("c", idle)
        port = comp.add_port("p")
        net = Net("n")
        net.connect(port)
        net.connect(port)
        assert net.ports.count(port) == 1

    def test_disconnect(self):
        comp = FunctionComponent("c", idle)
        port = comp.add_port("p")
        net = Net("n")
        net.connect(port)
        net.disconnect(port)
        assert port.net is None
        assert port not in net.ports

    def test_negative_net_delay(self):
        with pytest.raises(ConfigurationError):
            Net("n", delay=-1.0)

    def test_drive_unwired_port(self):
        comp = FunctionComponent("c", idle)
        port = comp.add_port("p", PortDirection.OUT)
        with pytest.raises(ConfigurationError):
            port.drive(1, 0.0)

    def test_input_port_cannot_drive(self):
        comp = FunctionComponent("c", idle)
        port = comp.add_port("p", PortDirection.IN)
        Net("n").connect(port)
        with pytest.raises(ConfigurationError):
            port.drive(1, 0.0)

    def test_output_port_cannot_receive(self):
        comp = FunctionComponent("c", idle)
        port = comp.add_port("p", PortDirection.OUT)
        with pytest.raises(ConfigurationError):
            port.deliver(0.0, 1)

    def test_post_on_unregistered_net(self):
        comp = FunctionComponent("c", idle)
        port = comp.add_port("p", PortDirection.OUT)
        net = Net("n")
        net.connect(port)
        with pytest.raises(ConfigurationError):
            net.post(1, 0.0)


class TestSubsystemApi:
    def test_duplicate_component(self):
        subsystem = Subsystem("ss")
        subsystem.add(FunctionComponent("c", idle))
        with pytest.raises(ConfigurationError):
            subsystem.add(FunctionComponent("c", idle))

    def test_component_cannot_join_two_subsystems(self):
        component = FunctionComponent("c", idle)
        Subsystem("a").add(component)
        with pytest.raises(ConfigurationError):
            Subsystem("b").add(component)

    def test_remove_releases_component(self):
        subsystem = Subsystem("a")
        component = subsystem.add(FunctionComponent("c", idle))
        assert subsystem.remove("c") is component
        Subsystem("b").add(component)     # re-attachable

    def test_duplicate_net(self):
        subsystem = Subsystem("ss")
        subsystem.add_net(Net("n"))
        with pytest.raises(ConfigurationError):
            subsystem.add_net(Net("n"))

    def test_lookups(self):
        subsystem = Subsystem("ss")
        with pytest.raises(ConfigurationError):
            subsystem.component("ghost")
        with pytest.raises(ConfigurationError):
            subsystem.net("ghost")

    def test_idle_and_next_event(self):
        sim = Simulator()
        assert sim.subsystem.idle()
        assert sim.subsystem.next_event_time() == float("inf")


class TestSimulatorFacade:
    def test_step_returns_events_then_none(self):
        sim = Simulator()

        def two_wakes(comp):
            from repro.core import WaitUntil
            yield WaitUntil(1.0)
            yield WaitUntil(2.0)

        sim.add(FunctionComponent("c", two_wakes))
        assert sim.step() is not None
        assert sim.step() is not None
        assert sim.step() is None

    def test_auto_checkpoint_validates_interval(self):
        from repro.core import SimulationError
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.auto_checkpoint(0)

    def test_recovery_gives_up_after_max_rollbacks(self):
        """A system that violates consistency forever must terminate with
        an error, not loop."""
        from repro.core import SimulationError
        from repro.core.events import Event, EventKind
        from repro.core.timestamp import Timestamp

        sim = Simulator()
        sim.add(FunctionComponent("c", idle))

        def always_violate(event):
            raise ConsistencyViolation("synthetic", violation_time=0.0)

        sim.subsystem.scheduler.schedule(
            Event(Timestamp(0.5), EventKind.CONTROL, target=always_violate))
        with pytest.raises(SimulationError):
            sim.run_with_recovery(max_rollbacks=3)
        assert sim.recoveries == 4      # initial try + 3 retries

    def test_signal_env_for_switchpoints(self):
        sim = Simulator()

        def pulse(comp):
            from repro.core import Send
            yield Advance(1.0)
            yield Send("out", 42)

        def sink(comp):
            from repro.core import Receive
            yield Receive("in")

        p = sim.add(FunctionComponent("p", pulse, ports={"out": "out"}))
        c = sim.add(FunctionComponent("c", sink, ports={"in": "in"}))
        sim.wire("sig", p.port("out"), c.port("in"))
        sim.add_switchpoint("when net.sig == 42: p -> default")
        sim.run()
        assert len(sim.switchpoints.history) == 1


class TestSyncTable:
    def test_static_policy_never_raises(self):
        table = SyncTable(policy=SyncPolicy.STATIC)
        table.record_access(0x10, 5.0)
        table.check_external_write(0x10, 1.0)     # no-op under STATIC

    def test_optimistic_detection_order(self):
        table = SyncTable(policy=SyncPolicy.OPTIMISTIC, owner="cpu")
        table.record_access(0x10, 5.0)
        table.check_external_write(0x10, 6.0)     # later write: fine
        with pytest.raises(ConsistencyViolation) as info:
            table.check_external_write(0x10, 4.0)
        assert info.value.component == "cpu"
        assert info.value.address == 0x10
        assert table.violations

    def test_marked_addresses_exempt(self):
        table = SyncTable(policy=SyncPolicy.OPTIMISTIC)
        table.record_access(0x10, 5.0)
        table.mark_synchronous(0x10, dynamic=True)
        table.check_external_write(0x10, 1.0)
        assert 0x10 in table.dynamic_marks

    def test_forget_after(self):
        table = SyncTable(policy=SyncPolicy.OPTIMISTIC)
        table.record_access(0x10, 5.0)
        table.record_access(0x20, 2.0)
        table.forget_after(3.0)
        assert 0x10 not in table.access_log
        assert table.access_log[0x20] == 2.0

    @given(st.lists(st.tuples(st.integers(0, 63),
                              st.floats(min_value=0, max_value=100,
                                        allow_nan=False)),
                    min_size=1, max_size=30))
    @settings(max_examples=30)
    def test_access_log_keeps_maximum(self, accesses):
        table = SyncTable(policy=SyncPolicy.OPTIMISTIC)
        best = {}
        for addr, t in accesses:
            table.record_access(addr, t)
            best[addr] = max(best.get(addr, float("-inf")), t)
        assert table.access_log == best
