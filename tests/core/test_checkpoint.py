"""Checkpoint/restore: full images, replay, incremental stores."""

import pytest

from repro.core import (
    Advance,
    CheckpointError,
    FunctionComponent,
    IncrementalCheckpointStore,
    NoSuchCheckpointError,
    PortDirection,
    ProcessComponent,
    ReactiveComponent,
    Receive,
    Send,
    Simulator,
)


class Accumulator(ProcessComponent):
    def __init__(self, name):
        super().__init__(name)
        self.seen = []
        self.add_port("in", PortDirection.IN)

    def run(self):
        while True:
            t, v = yield Receive("in")
            self.seen.append((t, v))


class Ticker(ProcessComponent):
    def __init__(self, name, count=10):
        super().__init__(name)
        self.count = count
        self.add_port("out", PortDirection.OUT)

    def run(self):
        for i in range(self.count):
            yield Advance(1.0)
            yield Send("out", i)


def build():
    sim = Simulator()
    ticker = sim.add(Ticker("ticker"))
    acc = sim.add(Accumulator("acc"))
    sim.wire("n", ticker.port("out"), acc.port("in"))
    return sim, ticker, acc


class TestProcessReplayCheckpoint:
    def test_restore_rewinds_state_and_time(self):
        sim, ticker, acc = build()
        sim.run(until=3.0)
        cid = sim.checkpoint("mid")
        state_at_ckpt = list(acc.seen)
        sim.run()
        assert len(acc.seen) == 10
        sim.restore(cid)
        assert acc.seen == state_at_ckpt
        assert sim.now == 3.0
        assert acc.local_time == 3.0

    def test_reexecution_after_restore_matches_original(self):
        sim, ticker, acc = build()
        sim.run(until=4.0)
        cid = sim.checkpoint()
        sim.run()
        original = list(acc.seen)
        sim.restore(cid)
        sim.run()
        assert acc.seen == original

    def test_restore_before_any_delivery(self):
        sim, ticker, acc = build()
        cid = sim.checkpoint("start")
        sim.run()
        sim.restore(cid)
        assert acc.seen == []
        sim.run()
        assert len(acc.seen) == 10

    def test_multiple_restores_of_same_checkpoint(self):
        sim, ticker, acc = build()
        sim.run(until=5.0)
        cid = sim.checkpoint()
        for __ in range(3):
            sim.run()
            assert len(acc.seen) == 10
            sim.restore(cid)
            assert len(acc.seen) == 5

    def test_restore_unknown_id_raises(self):
        sim, *_ = build()
        with pytest.raises(NoSuchCheckpointError):
            sim.restore(999)

    def test_checkpoint_of_finished_component(self):
        sim, ticker, acc = build()
        sim.run()
        assert ticker.finished
        cid = sim.checkpoint()
        sim.restore(cid)
        assert ticker.finished
        assert acc.seen[-1] == (10.0, 9)

    def test_replay_detects_nondeterminism(self):
        import itertools
        counter = itertools.count()   # external state: NOT checkpointed

        class Fickle(ProcessComponent):
            def run(self):
                yield Advance(1.0)
                if next(counter) > 0:   # behaves differently on re-run
                    t, v = yield Receive("nope")

        sim = Simulator()
        fickle = sim.add(Fickle("fickle"))
        fickle.add_port("nope", PortDirection.IN)
        sim.run()
        cid = sim.checkpoint()
        with pytest.raises(CheckpointError):
            sim.restore(cid)


class TestReactiveCheckpoint:
    def test_reactive_state_roundtrip(self):
        class Summer(ReactiveComponent):
            def __init__(self, name):
                super().__init__(name)
                self.total = 0
                self.log = []
                self.add_port("in", PortDirection.IN)

            def on_event(self, port, time, value):
                self.total += value
                self.log.append(value)

        sim = Simulator()
        summer = sim.add(Summer("sum"))
        ticker = sim.add(Ticker("ticker", count=6))
        sim.wire("n", ticker.port("out"), summer.port("in"))
        sim.run(until=3.0)
        cid = sim.checkpoint()
        assert summer.total == 3        # 0+1+2
        sim.run()
        assert summer.total == 15
        sim.restore(cid)
        assert summer.total == 3
        assert summer.log == [0, 1, 2]
        sim.run()
        assert summer.total == 15

    def test_rng_state_restored(self):
        class Dice(ReactiveComponent):
            def __init__(self, name):
                super().__init__(name)
                self.rolls = []
                self.add_port("in", PortDirection.IN)

            def on_event(self, port, time, value):
                self.rolls.append(self.rng.randint(1, 6))

        sim = Simulator()
        dice = sim.add(Dice("dice"))
        ticker = sim.add(Ticker("ticker", count=8))
        sim.wire("n", ticker.port("out"), dice.port("in"))
        sim.run(until=4.0)
        cid = sim.checkpoint()
        sim.run()
        original = list(dice.rolls)
        sim.restore(cid)
        sim.run()
        assert dice.rolls == original


class TestAutoCheckpointAndStores:
    def test_auto_checkpoint_takes_periodic_images(self):
        sim, *_ = build()
        sim.auto_checkpoint(2.0)
        sim.run()
        store = sim.subsystem.checkpoints
        times = sorted(store.image(cid).time for cid in store.ids())
        assert times == [2.0, 4.0, 6.0, 8.0, 10.0]

    def test_latest_at_or_before(self):
        sim, *_ = build()
        sim.auto_checkpoint(2.0)
        sim.run()
        store = sim.subsystem.checkpoints
        cid = store.latest_at_or_before(5.0)
        assert store.image(cid).time == 4.0
        assert store.latest_at_or_before(0.5) is None

    def test_keep_last_prunes(self):
        from repro.core import CheckpointStore
        sim = Simulator(checkpoint_store=CheckpointStore(keep_last=2))
        ticker = sim.add(Ticker("ticker"))
        acc = sim.add(Accumulator("acc"))
        sim.wire("n", ticker.port("out"), acc.port("in"))
        sim.auto_checkpoint(1.0)
        sim.run()
        assert len(sim.subsystem.checkpoints) == 2

    def test_incremental_store_restores_identically(self):
        store = IncrementalCheckpointStore(full_every=3)
        sim = Simulator(checkpoint_store=store)
        ticker = sim.add(Ticker("ticker"))
        acc = sim.add(Accumulator("acc"))
        sim.wire("n", ticker.port("out"), acc.port("in"))
        cids = []
        for t in [2.0, 4.0, 6.0, 8.0]:
            sim.run(until=t)
            cids.append(sim.checkpoint())
        sim.run()
        final = list(acc.seen)
        sim.restore(cids[1])            # a delta record
        assert len(acc.seen) == 4
        sim.run()
        assert acc.seen == final
        sim.restore(cids[3])
        assert len(acc.seen) == 8

    def test_incremental_store_is_smaller_than_full(self):
        def run_with(store):
            sim = Simulator(checkpoint_store=store)
            ticker = sim.add(Ticker("ticker", count=40))
            acc = sim.add(Accumulator("acc"))
            # Give the accumulator bulky, mostly-constant state.
            acc.bulk = list(range(5000))
            sim.wire("n", ticker.port("out"), acc.port("in"))
            for t in range(2, 40, 2):
                sim.run(until=float(t))
                sim.checkpoint()
            return store.storage_bytes()

        from repro.core import CheckpointStore
        full = run_with(CheckpointStore())
        incremental = run_with(IncrementalCheckpointStore(full_every=100))
        assert incremental < full / 3

    def test_incremental_rejects_pruning(self):
        with pytest.raises(CheckpointError):
            IncrementalCheckpointStore(keep_last=3)
