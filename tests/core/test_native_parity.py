"""Differential tests: the native event core against the pure-python one.

The C extension (``repro._native._core``) must be observably
indistinguishable from ``PythonEvent``/``PythonEventQueue`` — same pop
order, same tie-breaking, same error messages, same snapshot/restore and
``remove_if`` behaviour under adversarial interleavings.  Every test
here drives *both* implementations with the same inputs and compares the
outputs, so the suite is meaningful in either CI leg: with the compiled
backend live it checks the fallback, with ``PIA_PURE=1`` it checks the
compiled artefact that the rest of the process is refusing.

Skips cleanly (rather than failing) when the extension was never built.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

_core = pytest.importorskip(
    "repro._native._core",
    reason="native hot core not built "
           "(python setup.py build_ext --inplace)")

from repro.core.errors import CausalityError
from repro.core.events import EventKind, PythonEvent, PythonEventQueue
from repro.core.timestamp import Timestamp


def _sink(event):
    """Shared CONTROL target for events on both backends."""


def _pair(time, priority, marker):
    """One logical event, constructed on both backends."""
    ts = Timestamp(time, priority)
    return (_core.Event(ts, EventKind.CONTROL, _sink, payload=marker),
            PythonEvent(ts, EventKind.CONTROL, _sink, payload=marker))


def _key(event):
    """The observable identity of a popped event."""
    return (event.time, event.priority, event.seq, event.payload)


def _drain(queue):
    out = []
    while queue:
        out.append(_key(queue.pop()))
    return out


#: (time, priority) pairs; small domains force heavy tie-breaking so the
#: seq-number third key actually decides orderings.
_STAMPS = st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
              st.integers(min_value=0, max_value=3)),
    min_size=0, max_size=40)


class TestPopOrderingParity:
    @given(_STAMPS)
    @settings(max_examples=200, deadline=None)
    def test_drain_order_identical(self, stamps):
        native, pure = _core.EventQueue(), PythonEventQueue()
        for marker, (time, priority) in enumerate(stamps):
            n_ev, p_ev = _pair(time, priority, marker)
            native.push(n_ev)
            pure.push(p_ev)
        assert len(native) == len(pure)
        assert _drain(native) == _drain(pure)

    @given(_STAMPS, st.integers(min_value=0, max_value=39))
    @settings(max_examples=100, deadline=None)
    def test_interleaved_push_pop(self, stamps, pop_every):
        """Pop mid-stream: later pushes must never outrun a frozen seq."""
        native, pure = _core.EventQueue(), PythonEventQueue()
        popped_n, popped_p = [], []
        for marker, (time, priority) in enumerate(stamps):
            n_ev, p_ev = _pair(time, priority, marker)
            native.push(n_ev)
            pure.push(p_ev)
            if pop_every and marker % (pop_every + 1) == pop_every:
                popped_n.append(_key(native.pop()))
                popped_p.append(_key(pure.pop()))
        assert popped_n == popped_p
        assert _drain(native) == _drain(pure)

    @given(_STAMPS)
    @settings(max_examples=100, deadline=None)
    def test_next_time_and_peek_track_pops(self, stamps):
        native, pure = _core.EventQueue(), PythonEventQueue()
        for marker, (time, priority) in enumerate(stamps):
            n_ev, p_ev = _pair(time, priority, marker)
            native.push(n_ev)
            pure.push(p_ev)
        while pure:
            assert native.next_time() == pure.next_time()
            assert _key(native.peek()) == _key(pure.peek())
            native.pop()
            pure.pop()
        assert native.next_time() == pure.next_time() == float("inf")
        assert native.peek() is None and pure.peek() is None


class TestRemoveIfParity:
    @given(_STAMPS, st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=4))
    @settings(max_examples=150, deadline=None)
    def test_remove_if_under_interleaving(self, stamps, modulo, residue):
        """remove_if mid-stream: same survivors, same counts, same order."""
        native, pure = _core.EventQueue(), PythonEventQueue()
        predicate = lambda event: event.payload % modulo == residue
        for marker, (time, priority) in enumerate(stamps):
            n_ev, p_ev = _pair(time, priority, marker)
            native.push(n_ev)
            pure.push(p_ev)
            if marker % 7 == 6:
                assert native.remove_if(predicate) == \
                    pure.remove_if(predicate)
            if marker % 11 == 10 and pure:
                assert _key(native.pop()) == _key(pure.pop())
        assert native.remove_if(predicate) == pure.remove_if(predicate)
        assert _drain(native) == _drain(pure)

    def test_predicate_error_leaves_queue_consistent(self):
        """A predicate that blows up mid-scan propagates on both backends
        and leaves a queue that still drains in order."""
        def boom(event):
            if event.payload == 2:
                raise RuntimeError("predicate boom")
            return False

        native, pure = _core.EventQueue(), PythonEventQueue()
        for marker in range(5):
            n_ev, p_ev = _pair(float(marker), 1, marker)
            native.push(n_ev)
            pure.push(p_ev)
        with pytest.raises(RuntimeError):
            native.remove_if(boom)
        with pytest.raises(RuntimeError):
            pure.remove_if(boom)
        assert _drain(native) == _drain(pure)

    def test_reentrant_mutation_is_refused(self):
        """The C heap cannot be structurally edited mid-``remove_if``
        (a realloc would invalidate the entry array being scanned)."""
        queue = _core.EventQueue()
        for marker in range(3):
            queue.push(_pair(float(marker), 1, marker)[0])

        def mutate(event):
            queue.push(_pair(9.0, 1, 99)[0])
            return False

        with pytest.raises(RuntimeError, match="remove_if"):
            queue.remove_if(mutate)


class TestSnapshotRestoreParity:
    @given(_STAMPS)
    @settings(max_examples=100, deadline=None)
    def test_snapshot_is_delivery_order_and_restore_round_trips(
            self, stamps):
        native, pure = _core.EventQueue(), PythonEventQueue()
        for marker, (time, priority) in enumerate(stamps):
            n_ev, p_ev = _pair(time, priority, marker)
            native.push(n_ev)
            pure.push(p_ev)
        snap_n = native.snapshot()
        snap_p = pure.snapshot()
        assert [_key(e) for e in snap_n] == [_key(e) for e in snap_p]
        assert list(map(_key, native)) == list(map(_key, pure))

        fresh_n, fresh_p = _core.EventQueue(), PythonEventQueue()
        fresh_n.restore(snap_n)
        fresh_p.restore(snap_p)
        assert _drain(fresh_n) == _drain(fresh_p)
        # The originals were left untouched by snapshot().
        assert _drain(native) == _drain(pure)


class TestErrorParity:
    def test_pop_empty_message(self):
        with pytest.raises(IndexError) as native_err:
            _core.EventQueue().pop()
        with pytest.raises(IndexError) as pure_err:
            PythonEventQueue().pop()
        assert str(native_err.value) == str(pure_err.value)

    @given(st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
           st.floats(min_value=0.001, max_value=100.0, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_past_scheduling_message(self, time, delta):
        now = time + delta
        n_ev, p_ev = _pair(time, 1, 0)
        with pytest.raises(CausalityError) as native_err:
            _core.EventQueue().push(n_ev, now=now)
        with pytest.raises(CausalityError) as pure_err:
            PythonEventQueue().push(p_ev, now=now)
        assert str(native_err.value) == str(pure_err.value)


class TestEventParity:
    def test_bare_float_ts_promotes_identically(self):
        n_ev = _core.Event(2.5, EventKind.CONTROL, _sink)
        p_ev = PythonEvent(2.5, EventKind.CONTROL, _sink)
        assert (n_ev.time, n_ev.priority, n_ev.seq) == \
            (p_ev.time, p_ev.priority, p_ev.seq)
        assert n_ev.ts == p_ev.ts

    def test_at_and_with_cause_copy(self):
        n_ev, p_ev = _pair(1.0, 2, "payload")
        later = Timestamp(3.0, 1)
        cause = ("trace", 1, None, 2)
        for native, pure in ((n_ev.at(later), p_ev.at(later)),
                             (n_ev.with_cause(cause), p_ev.with_cause(cause))):
            assert (native.time, native.priority) == \
                (pure.time, pure.priority)
            assert native.payload == pure.payload
            assert native.cause == pure.cause

    def test_code_matches_kind(self):
        for kind in EventKind:
            n_ev = _core.Event(Timestamp(0.0), kind, _sink)
            assert n_ev.code == kind.code

    def test_repr_matches(self):
        n_ev, p_ev = _pair(1.5, 2, "x")
        assert repr(n_ev) == repr(p_ev)

    def test_pickle_round_trip_lands_on_active_backend(self):
        """Events pickle through a backend-neutral rebuild hook, so the
        blob loads on whatever implementation the target process binds."""
        from repro.core.events import Event
        n_ev = _core.Event(Timestamp(4.0, 2, 7), EventKind.CONTROL, None,
                           payload={"k": 1}, token=9)
        clone = pickle.loads(pickle.dumps(n_ev))
        assert isinstance(clone, Event)
        assert (clone.time, clone.priority, clone.seq) == (4.0, 2, 7)
        assert clone.payload == {"k": 1} and clone.token == 9

    def test_push_requires_native_event(self):
        """The C queue stores unboxed scalars per entry, so it refuses
        foreign event objects instead of silently misordering them."""
        queue = _core.EventQueue()
        p_ev = PythonEvent(Timestamp(0.0), EventKind.CONTROL, _sink)
        with pytest.raises(TypeError):
            queue.push(p_ev)
