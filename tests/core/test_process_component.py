"""Process components: run-until-receive semantics and two-level time."""

import pytest

from repro.core import (
    Advance,
    FunctionComponent,
    PortDirection,
    ProcessComponent,
    Receive,
    Send,
    SimulationError,
    Simulator,
    Sync,
    WaitUntil,
)


def make_pair(producer_behaviour, consumer_behaviour):
    sim = Simulator()
    producer = FunctionComponent("producer", producer_behaviour,
                                 ports={"out": "out"})
    consumer = FunctionComponent("consumer", consumer_behaviour,
                                 ports={"in": "in"})
    sim.add(producer)
    sim.add(consumer)
    sim.wire("link", producer.port("out"), consumer.port("in"))
    return sim, producer, consumer


class TestBasicFlow:
    def test_values_arrive_in_order_with_times(self):
        got = []

        def produce(comp):
            for value in [10, 20, 30]:
                yield Advance(1.0)
                yield Send("out", value)

        def consume(comp):
            for __ in range(3):
                time, value = yield Receive("in")
                got.append((time, value))

        sim, producer, consumer = make_pair(produce, consume)
        sim.run()
        assert got == [(1.0, 10), (2.0, 20), (3.0, 30)]

    def test_producer_runs_ahead_of_system_time(self):
        seen_system_times = []

        def produce(comp):
            yield Advance(100.0)        # runs way ahead immediately
            yield Send("out", "x")

        def consume(comp):
            time, value = yield Receive("in")
            seen_system_times.append((time, comp.system_time))

        sim, producer, consumer = make_pair(produce, consume)
        sim.run()
        # Delivery happens when system time reaches the send time.
        assert seen_system_times == [(100.0, 100.0)]
        assert producer.local_time == 100.0

    def test_receive_waits_for_late_value(self):
        got = []

        def produce(comp):
            yield Advance(5.0)
            yield Send("out", "late")

        def consume(comp):
            yield Advance(1.0)            # consumer pauses at local time 1
            time, value = yield Receive("in")
            got.append((time, value, comp.local_time))

        sim, __, ___ = make_pair(produce, consume)
        sim.run()
        assert got == [(5.0, "late", 5.0)]

    def test_early_value_consumed_at_pause_point(self):
        got = []

        def produce(comp):
            yield Send("out", "early")     # sent at t=0

        def consume(comp):
            yield Advance(8.0)             # consumer is ahead
            time, value = yield Receive("in")
            got.append((time, value))

        sim, __, ___ = make_pair(produce, consume)
        sim.run()
        # Value arrived at 0 but is consumed at the receive point (t=8).
        assert got == [(8.0, "early")]

    def test_finished_flag(self):
        def produce(comp):
            yield Send("out", 1)

        def consume(comp):
            yield Receive("in")

        sim, producer, consumer = make_pair(produce, consume)
        sim.run()
        assert producer.finished and consumer.finished

    def test_negative_advance_rejected(self):
        def bad(comp):
            yield Advance(-1.0)

        sim = Simulator()
        sim.add(FunctionComponent("bad", bad))
        with pytest.raises(SimulationError):
            sim.run()


class TestWaitAndSync:
    def test_wait_until_future(self):
        trace = []

        def waiter(comp):
            t = yield WaitUntil(4.0)
            trace.append(t)

        sim = Simulator()
        sim.add(FunctionComponent("w", waiter))
        sim.run()
        assert trace == [4.0]

    def test_wait_until_past_is_noop(self):
        trace = []

        def waiter(comp):
            yield Advance(9.0)
            t = yield WaitUntil(4.0)
            trace.append((t, comp.local_time))

        sim = Simulator()
        sim.add(FunctionComponent("w", waiter))
        sim.run()
        assert trace == [(9.0, 9.0)]

    def test_sync_sees_same_instant_signals_first(self):
        """A signal stamped at the sync instant is delivered before resume."""
        order = []

        def produce(comp):
            yield Advance(3.0)
            yield Send("out", "data")     # arrives at consumer at t=3

        def consume(comp):
            yield Advance(3.0)
            yield Sync()
            order.append(("resumed", comp.port("in").has_data()))

        sim, __, consumer = make_pair(produce, consume)
        sim.run()
        assert order == [("resumed", True)]

    def test_interleaving_is_deterministic(self):
        """Two identical runs produce identical traces."""

        def build():
            trace = []

            def ping(comp):
                for i in range(5):
                    yield Advance(1.0)
                    yield Send("out", f"p{i}")

            def pong(comp):
                for __ in range(5):
                    t, v = yield Receive("in")
                    trace.append((t, v))

            sim, *_ = make_pair(ping, pong)
            sim.run()
            return trace

        assert build() == build()


class TestMultiComponent:
    def test_three_stage_pipeline(self):
        results = []

        def source(comp):
            for i in range(4):
                yield Advance(1.0)
                yield Send("out", i)

        def relay(comp):
            while True:
                t, v = yield Receive("in")
                yield Advance(0.25)
                yield Send("out", v * 10)

        def sink(comp):
            for __ in range(4):
                t, v = yield Receive("in")
                results.append((t, v))

        sim = Simulator()
        src = FunctionComponent("src", source, ports={"out": "out"})
        mid = FunctionComponent("mid", relay, ports={"in": "in", "out": "out"})
        snk = FunctionComponent("snk", sink, ports={"in": "in"})
        for c in (src, mid, snk):
            sim.add(c)
        sim.wire("a", src.port("out"), mid.port("in"))
        sim.wire("b", mid.port("out"), snk.port("in"))
        sim.run()
        assert results == [(1.25, 0), (2.25, 10), (3.25, 20), (4.25, 30)]

    def test_net_delay_shifts_arrival(self):
        got = []

        def produce(comp):
            yield Send("out", "v")

        def consume(comp):
            t, v = yield Receive("in")
            got.append(t)

        sim = Simulator()
        p = FunctionComponent("p", produce, ports={"out": "out"})
        c = FunctionComponent("c", consume, ports={"in": "in"})
        sim.add(p)
        sim.add(c)
        sim.wire("link", p.port("out"), c.port("in"), delay=2.5)
        sim.run()
        assert got == [2.5]

    def test_fanout_net_reaches_all_listeners(self):
        got = {}

        def produce(comp):
            yield Send("out", 42)

        def listener(name):
            def consume(comp):
                t, v = yield Receive("in")
                got[name] = v
            return consume

        sim = Simulator()
        p = FunctionComponent("p", produce, ports={"out": "out"})
        sim.add(p)
        ports = [p.port("out")]
        for name in ["c1", "c2", "c3"]:
            c = FunctionComponent(name, listener(name), ports={"in": "in"})
            sim.add(c)
            ports.append(c.port("in"))
        sim.wire("bus", *ports)
        sim.run()
        assert got == {"c1": 42, "c2": 42, "c3": 42}


class TestSubclassStyle:
    def test_process_component_subclass(self):
        class Counter(ProcessComponent):
            def __init__(self, name):
                super().__init__(name)
                self.total = 0
                self.add_port("in", PortDirection.IN)

            def run(self):
                while True:
                    t, v = yield Receive("in")
                    self.total += v

        class Feeder(ProcessComponent):
            def __init__(self, name):
                super().__init__(name)
                self.add_port("out", PortDirection.OUT)

            def run(self):
                for v in [1, 2, 3]:
                    yield Advance(1.0)
                    yield Send("out", v)

        sim = Simulator()
        counter = sim.add(Counter("counter"))
        feeder = sim.add(Feeder("feeder"))
        sim.wire("n", feeder.port("out"), counter.port("in"))
        sim.run()
        assert counter.total == 6
        assert counter.local_time == 3.0
