"""Reactive components and the interface/transfer machinery."""

import pytest

from repro.core import (
    Advance,
    ConfigurationError,
    FunctionComponent,
    Interface,
    PortDirection,
    ProtocolError,
    ReactiveComponent,
    ReceiveTransfer,
    RunLevelError,
    Simulator,
    Transfer,
    TryReceive,
)
from repro.protocols import bus_protocol, packet_protocol


class Echo(ReactiveComponent):
    """Replies to each value with value+1 after a compute delay."""

    def __init__(self, name):
        super().__init__(name)
        self.handled = 0
        self.add_port("in", PortDirection.IN)
        self.add_port("out", PortDirection.OUT)

    def on_event(self, port, time, value):
        self.handled += 1
        self.advance(0.5)
        self.send("out", value + 1)


class TestReactiveComponent:
    def _pair(self):
        sim = Simulator()
        echo = sim.add(Echo("echo"))

        def driver(comp):
            comp.replies = []
            for value in (10, 20, 30):
                from repro.core import Receive, Send
                yield Advance(1.0)
                yield Send("out", value)
            while len(comp.replies) < 3:
                from repro.core import Receive
                t, v = yield Receive("in")
                comp.replies.append((t, v))

        drv = FunctionComponent("drv", driver,
                                ports={"out": "out", "in": "in"})
        sim.add(drv)
        sim.wire("fwd", drv.port("out"), echo.port("in"))
        sim.wire("bwd", echo.port("out"), drv.port("in"))
        return sim, echo, drv

    def test_handler_runs_at_event_time_and_advances(self):
        sim, echo, drv = self._pair()
        sim.run()
        assert echo.handled == 3
        # The driver ran ahead to local t=3.0 before its first receive, so
        # replies arriving earlier (1.5, 2.5) are consumed at its pause
        # point — two-level time at work.
        assert drv.replies == [(3.0, 11), (3.0, 21), (3.5, 31)]
        assert echo.local_time == 3.5

    def test_wake_scheduling(self):
        sim = Simulator()

        class Ticker(ReactiveComponent):
            def __init__(self, name):
                super().__init__(name)
                self.ticks = []

            def on_start(self):
                self.wake_after(1.0, payload="first")

            def on_wake(self, time, payload):
                self.ticks.append((time, payload))
                if len(self.ticks) < 3:
                    self.wake_after(1.0, payload="again")

        ticker = sim.add(Ticker("ticker"))
        sim.run()
        assert ticker.ticks == [(1.0, "first"), (2.0, "again"),
                                (3.0, "again")]

    def test_negative_advance_rejected(self):
        sim = Simulator()
        echo = sim.add(Echo("echo"))
        from repro.core import SimulationError
        with pytest.raises(SimulationError):
            echo.advance(-1.0)

    def test_on_transfer_hook(self):
        sim = Simulator()

        class Receiverside(ReactiveComponent):
            def __init__(self, name):
                super().__init__(name)
                self.payloads = []
                self.add_interface(Interface("bus", bus_protocol(),
                                             level="word", in_port="rx"))

            def on_transfer(self, interface, time, payload):
                self.payloads.append((interface, payload))

        def sender(comp):
            yield Advance(1.0)
            yield Transfer("bus", b"hello world!")

        rx = sim.add(Receiverside("rx"))
        tx = FunctionComponent("tx", sender)
        tx.add_interface(Interface("bus", bus_protocol(), level="word",
                                   out_port="tx"))
        sim.add(tx)
        sim.wire("link", tx.port("tx"), rx.port("rx"))
        sim.run()
        assert rx.payloads == [("bus", b"hello world!")]

    def test_reactive_transfer_send(self):
        sim = Simulator()

        class Sender(ReactiveComponent):
            def __init__(self, name):
                super().__init__(name)
                self.add_interface(Interface("bus", bus_protocol(),
                                             level="byte", out_port="tx"))

            def on_start(self):
                self.advance(1.0)
                duration = self.transfer("bus", b"xyz")
                assert duration > 0

        def collector(comp):
            comp.got = []
            while True:
                t, payload = yield ReceiveTransfer("bus")
                comp.got.append(payload)

        rx = FunctionComponent("rx", collector)
        rx.add_interface(Interface("bus", bus_protocol(), level="byte",
                                   in_port="rx"))
        sim.add(Sender("txer"))
        sim.add(rx)
        sim.wire("link", sim.component("txer").port("tx"), rx.port("rx"))
        sim.run()
        assert rx.got == [b"xyz"]


class TestInterfaceRules:
    def test_unknown_level_at_construction(self):
        with pytest.raises(RunLevelError):
            Interface("bus", bus_protocol(), level="warp", out_port="o")

    def test_set_level_validates(self):
        iface = Interface("bus", bus_protocol(), out_port="o")
        with pytest.raises(RunLevelError):
            iface.set_level("warp")

    def test_emit_requires_binding(self):
        iface = Interface("bus", bus_protocol(), out_port="o")
        with pytest.raises(ConfigurationError):
            iface.emit(b"x", 0.0, advance=lambda dt: None)

    def test_transfer_ids_unique_per_interface(self):
        sim = Simulator()

        def sender(comp):
            yield Transfer("bus", b"a")
            yield Transfer("bus", b"b")

        tx = FunctionComponent("tx", sender)
        tx.add_interface(Interface("bus", bus_protocol(),
                                   level="transaction", out_port="o"))
        collected = []

        def collector(comp):
            while True:
                t, payload = yield ReceiveTransfer("bus")
                collected.append(payload)

        rx = FunctionComponent("rx", collector)
        rx.add_interface(Interface("bus", bus_protocol(),
                                   level="transaction", in_port="i"))
        sim.add(tx)
        sim.add(rx)
        sim.wire("l", tx.port("o"), rx.port("i"))
        sim.run()
        assert collected == [b"a", b"b"]
        assert tx.interface("bus").sent_transfers == 2
        assert rx.interface("bus").received_transfers == 2

    def test_level_switch_is_safe_across_transfers(self):
        """A transfer emitted at word level reassembles even after the
        receiver's configured level changed — framing is self-describing,
        so transfer boundaries are always safe points."""
        sim = Simulator()

        def sender(comp):
            yield Transfer("bus", b"first")   # word level
            comp.interface("bus").set_level("transaction")
            yield Transfer("bus", b"second")  # transaction level

        tx = FunctionComponent("tx", sender)
        tx.add_interface(Interface("bus", bus_protocol(), level="word",
                                   out_port="o"))
        got = []

        def collector(comp):
            for __ in range(2):
                t, payload = yield ReceiveTransfer("bus")
                got.append(payload)

        rx = FunctionComponent("rx", collector)
        rx.add_interface(Interface("bus", bus_protocol(), level="word",
                                   in_port="i"))
        sim.add(tx)
        sim.add(rx)
        sim.wire("l", tx.port("o"), rx.port("i"))
        sim.run()
        assert got == [b"first", b"second"]

    def test_mid_transfer_flag(self):
        iface = Interface("bus", bus_protocol(), in_port="i")
        comp = FunctionComponent("c", lambda comp: iter(()))
        comp.add_interface(iface)
        assert not iface.mid_transfer()
        iface.absorb(0.0, ("HDR", ("t", 1), "word", 2, "bytes"))
        assert iface.mid_transfer()
        iface.absorb(0.0, ("CHK", ("t", 1), 0, b"ab"))
        result = iface.absorb(0.0, ("CHK", ("t", 1), 1, b"cd"))
        assert result == b"abcd"
        assert not iface.mid_transfer()

    def test_snapshot_state_roundtrip(self):
        iface = Interface("bus", packet_protocol(), in_port="i")
        comp = FunctionComponent("c", lambda comp: iter(()))
        comp.add_interface(iface)
        iface.absorb(0.0, ("HDR", ("t", 9), "packet", 2, "bytes"))
        state = iface.snapshot_state()
        iface.absorb(0.0, ("CHK", ("t", 9), 0, b"zz"))
        iface.set_level("word")
        iface.restore_state(state)
        assert iface.level == "packet"
        assert iface.mid_transfer()
        iface.absorb(0.0, ("CHK", ("t", 9), 0, b"aa"))
        assert iface.absorb(0.0, ("CHK", ("t", 9), 1, b"bb")) == b"aabb"


class TestTryReceive:
    def test_nonblocking_semantics(self):
        sim = Simulator()

        def poller(comp):
            comp.polls = []
            first = yield TryReceive("in")
            comp.polls.append(first)            # nothing yet
            from repro.core import WaitUntil
            yield WaitUntil(5.0)
            second = yield TryReceive("in")
            comp.polls.append(second)
            third = yield TryReceive("in")
            comp.polls.append(third)

        def pusher(comp):
            from repro.core import Send
            yield Advance(2.0)
            yield Send("out", "ping")

        poll = FunctionComponent("poll", poller, ports={"in": "in"})
        push = FunctionComponent("push", pusher, ports={"out": "out"})
        sim.add(poll)
        sim.add(push)
        sim.wire("n", push.port("out"), poll.port("in"))
        sim.run()
        assert poll.polls[0] is None
        assert poll.polls[1] == (5.0, "ping")
        assert poll.polls[2] is None

    def test_tryreceive_replays(self):
        sim = Simulator()

        def poller(comp):
            from repro.core import WaitUntil
            comp.polls = []
            yield WaitUntil(3.0)
            got = yield TryReceive("in")
            comp.polls.append(got)
            yield WaitUntil(6.0)

        def pusher(comp):
            from repro.core import Send
            yield Advance(1.0)
            yield Send("out", 7)

        poll = FunctionComponent("poll", poller, ports={"in": "in"})
        push = FunctionComponent("push", pusher, ports={"out": "out"})
        sim.add(poll)
        sim.add(push)
        sim.wire("n", push.port("out"), poll.port("in"))
        sim.run(until=4.0)
        cid = sim.checkpoint()
        sim.run()
        sim.restore(cid)
        assert poll.polls == [(3.0, 7)]
        sim.run()
        assert poll.finished
