"""Run-control files: parsing and application."""

import pytest

from repro.core import ConfigurationError, Interface, Simulator
from repro.core.runcontrol import RunControl, load, parse
from repro.protocols import packet_protocol

SAMPLE = """
# a run control file
[runlevels]
tx.link = word
rx.link = word

[switchpoints]
when tx.localtime >= 3.0: tx.link -> packet, rx.link -> packet
repeat when net.sig == 1: tx -> packet

[sliders]
detail = tx.link, rx.link : transaction, packet, word

[checkpoints]
interval = 2.0

[run]
until = 10.0
"""


class TestParsing:
    def test_full_file(self):
        control = parse(SAMPLE)
        assert control.runlevels == {"tx.link": "word", "rx.link": "word"}
        assert len(control.switchpoints) == 2
        assert control.switchpoints[0].once is True
        assert control.switchpoints[1].once is False
        assert control.sliders["detail"] == (
            ["tx.link", "rx.link"], ["transaction", "packet", "word"])
        assert control.checkpoint_interval == 2.0
        assert control.until == 10.0

    def test_comments_and_blank_lines_ignored(self):
        control = parse("# nothing\n\n[run]\nuntil = 1.0  # trailing\n")
        assert control.until == 1.0

    @pytest.mark.parametrize("bad", [
        "until = 1.0",                       # content before section
        "[weird]\nx = 1",                    # unknown section
        "[runlevels]\njusttext",             # missing '='
        "[sliders]\nname = a b",             # missing ':'
        "[sliders]\nname = : word",          # empty targets
        "[checkpoints]\ncadence = 1",        # unknown key
        "[checkpoints]\ninterval = nope",    # bad number
        "[checkpoints]\ninterval = -1",      # non-positive
        "[run]\nstop = 3",                   # unknown key
        "[switchpoints]\nbroken ->",         # bad switchpoint
    ])
    def test_malformed(self, bad):
        with pytest.raises(Exception):
            parse(bad)

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "run.pia"
        path.write_text(SAMPLE)
        control = load(str(path))
        assert control.until == 10.0

    def test_load_missing_file(self):
        with pytest.raises(ConfigurationError):
            load("/nonexistent/run.pia")


def build_link_system():
    from repro.core import (FunctionComponent, ReceiveTransfer, Transfer,
                            WaitUntil)
    sim = Simulator()

    def sender(comp):
        for __ in range(6):
            yield WaitUntil(comp.local_time + 1.0)
            yield Transfer("link", b"x" * 100)

    def receiver(comp):
        while True:
            yield ReceiveTransfer("link")

    tx = FunctionComponent("tx", sender)
    tx.add_interface(Interface("link", packet_protocol(), out_port="o"))
    rx = FunctionComponent("rx", receiver)
    rx.add_interface(Interface("link", packet_protocol(), in_port="i"))
    sim.add(tx)
    sim.add(rx)
    sim.wire("sig", tx.port("o"), rx.port("i"))
    return sim, tx, rx


class TestApplication:
    def test_apply_configures_everything(self):
        sim, tx, rx = build_link_system()
        control = parse("""
        [runlevels]
        tx.link = word
        [switchpoints]
        when tx.localtime >= 3.0: tx.link -> packet
        [sliders]
        s = rx.link : transaction, packet, word
        [checkpoints]
        interval = 2.0
        """)
        sliders = control.apply(sim)
        assert tx.interface("link").level == "word"
        assert "s" in sliders
        sim.run()
        assert tx.interface("link").level == "packet"
        assert len(sim.subsystem.checkpoints) >= 2

    def test_run_respects_until(self):
        sim, tx, rx = build_link_system()
        control = parse("[run]\nuntil = 2.5\n")
        control.run(sim)
        assert sim.now <= 2.5
        assert not sim.subsystem.idle()

    def test_apply_to_cosimulation(self):
        from repro.core import (Advance, FunctionComponent, Receive, Send)
        from repro.distributed import CoSimulation
        cosim = CoSimulation()
        ss_a = cosim.add_subsystem(cosim.add_node("na"), "sa")
        ss_b = cosim.add_subsystem(cosim.add_node("nb"), "sb")

        def produce(comp):
            for i in range(3):
                yield Advance(1.0)
                yield Send("out", i)

        def consume(comp):
            comp.got = []
            for __ in range(3):
                t, v = yield Receive("in")
                comp.got.append(v)

        p = FunctionComponent("p", produce, ports={"out": "out"})
        c = FunctionComponent("c", consume, ports={"in": "in"})
        ss_a.add(p)
        ss_b.add(c)
        channel = cosim.connect(ss_a, ss_b)
        channel.split_net(ss_a.wire("w", p.port("out")),
                          ss_b.wire("w", c.port("in")))
        control = parse("[checkpoints]\ninterval = 1.5\n")
        control.run(cosim)
        assert c.got == [0, 1, 2]
        assert cosim.snapshot_interval == 1.5
        assert cosim.registry.completed()
