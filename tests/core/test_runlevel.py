"""Switchpoint parsing/evaluation, sliders, imperative switches."""

import pytest

from repro.core import (
    Advance,
    FunctionComponent,
    RunLevelError,
    Simulator,
    SwitchLevel,
    SwitchpointSyntaxError,
    parse_switchpoint,
)
from repro.core.runlevel import (
    And,
    Comparison,
    LocalTimeRef,
    Or,
    SignalRef,
    SwitchpointEnvironment,
)


class TestParser:
    def test_paper_example(self):
        sp = parse_switchpoint(
            "when I2CComponent.localtime >= 67: "
            "I2CComponent -> hardwareLevel, VidCamComponent -> byteLevel")
        assert sp.condition == Comparison(LocalTimeRef("I2CComponent"), ">=", 67)
        assert sp.assignments == [("I2CComponent", "hardwareLevel"),
                                  ("VidCamComponent", "byteLevel")]

    def test_when_keyword_optional(self):
        sp = parse_switchpoint("A.localtime > 5: A -> fast")
        assert sp.assignments == [("A", "fast")]

    def test_conjunction_and_disjunction(self):
        sp = parse_switchpoint(
            "A.localtime >= 1 and (B.localtime >= 2 or C.localtime < 3): "
            "A -> x")
        assert isinstance(sp.condition, And)
        assert isinstance(sp.condition.terms[1], Or)

    def test_signal_reference(self):
        sp = parse_switchpoint("net.irq == 1: Cpu -> hardwareLevel")
        assert sp.condition == Comparison(SignalRef("irq"), "==", 1)

    def test_interface_target(self):
        sp = parse_switchpoint("A.localtime >= 0: A.bus -> word")
        assert sp.assignments == [("A.bus", "word")]

    def test_float_and_string_values(self):
        sp = parse_switchpoint("A.localtime >= 1.5: A -> x")
        assert sp.condition.value == 1.5
        sp = parse_switchpoint('net.mode == "idle": A -> x')
        assert sp.condition.value == "idle"

    @pytest.mark.parametrize("bad", [
        "A.localtime >= : A -> x",
        "A.localtime 5: A -> x",
        "A.localtime >= 5",
        "A.localtime >= 5: A ->",
        "A.weird >= 5: A -> x",
        "A.localtime >= 5: A -> x garbage",
        ": A -> x",
        "A.localtime >= 5: A -> x,",
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(SwitchpointSyntaxError):
            parse_switchpoint(bad)

    def test_evaluation(self):
        env = SwitchpointEnvironment(
            local_time={"A": 10.0, "B": 1.0}.__getitem__,
            signal={"irq": 1}.__getitem__)
        assert parse_switchpoint("A.localtime >= 5: A -> x").evaluate(env)
        assert not parse_switchpoint("B.localtime >= 5: A -> x").evaluate(env)
        assert parse_switchpoint(
            "B.localtime >= 5 or net.irq == 1: A -> x").evaluate(env)
        assert not parse_switchpoint(
            "B.localtime >= 5 and net.irq == 1: A -> x").evaluate(env)


def _two_level_system():
    """Two wait-looping components whose local times tick up one second at
    a time, generating an event (and a switchpoint poll) per tick."""
    from repro.core import WaitUntil

    sim = Simulator()

    def worker(comp):
        for __ in range(100):
            yield WaitUntil(comp.local_time + 1.0)

    a = sim.add(FunctionComponent("A", worker))
    b = sim.add(FunctionComponent("B", worker))
    return sim, a, b


class TestSwitchpointFiring:
    def test_fires_on_local_time(self):
        sim = Simulator()
        from repro.core import Interface
        from repro.protocols import i2c_protocol

        def chatter(comp):
            from repro.core import Transfer, WaitUntil
            for __ in range(30):
                # Block each round so local time tracks system time and the
                # switch is observed mid-run rather than at start-up.
                yield WaitUntil(comp.local_time + 10.0)
                yield Transfer("link", b"ab")

        def sink(comp):
            while True:
                from repro.core import ReceiveTransfer
                yield ReceiveTransfer("link")

        i2c = FunctionComponent("I2CComponent", chatter)
        i2c.add_interface(Interface("link", i2c_protocol(),
                                    out_port="out", level="byteLevel"))
        cam = FunctionComponent("VidCamComponent", sink)
        cam.add_interface(Interface("link", i2c_protocol(),
                                    in_port="in", level="byteLevel"))
        sim.add(i2c)
        sim.add(cam)
        sim.wire("n", i2c.port("out"), cam.port("in"))
        sim.add_switchpoint(
            "when I2CComponent.localtime >= 67: "
            "I2CComponent -> hardwareLevel, VidCamComponent -> hardwareLevel")
        sim.run()
        assert i2c.interface("link").level == "hardwareLevel"
        assert i2c.runlevel == "hardwareLevel"
        assert len(sim.switchpoints.history) == 1
        fired_at = sim.switchpoints.history[0][0]
        assert fired_at >= 67.0

    def test_once_semantics(self):
        sim, a, b = _two_level_system()
        fired = []
        sim.switchpoints.apply = lambda t, l: fired.append((t, l))
        sim.add_switchpoint("A.localtime >= 5: A -> fast")
        sim.run(until=50.0)
        assert fired == [("A", "fast")]

    def test_repeating_switchpoint(self):
        sim, a, b = _two_level_system()
        fired = []
        sim.switchpoints.apply = lambda t, l: fired.append((t, l))
        sim.add_switchpoint("A.localtime >= 5: A -> fast", once=False)
        sim.run(until=10.0)
        assert len(fired) > 1


class TestSliderAndImperative:
    def test_slider_moves_levels(self):
        sim = Simulator()
        from repro.core import Interface
        from repro.protocols import packet_protocol

        def idle(comp):
            yield Advance(1.0)

        a = FunctionComponent("A", idle)
        a.add_interface(Interface("bus", packet_protocol(), out_port="o"))
        sim.add(a)
        slider = sim.slider(["A.bus"], ["transaction", "packet", "word"])
        assert slider.level == "transaction"
        slider.set(0)
        assert a.interface("bus").level == "transaction"
        slider.more_detail()
        assert a.interface("bus").level == "packet"
        slider.more_detail()
        slider.more_detail()   # clamps at most detailed
        assert a.interface("bus").level == "word"
        slider.less_detail()
        assert a.interface("bus").level == "packet"
        with pytest.raises(RunLevelError):
            slider.set(5)

    def test_imperative_switch_statement(self):
        sim = Simulator()
        from repro.core import Interface
        from repro.protocols import packet_protocol

        def behaviour(comp):
            yield Advance(1.0)
            yield SwitchLevel("word", target="A.bus")

        a = FunctionComponent("A", behaviour)
        a.add_interface(Interface("bus", packet_protocol(), out_port="o"))
        sim.add(a)
        sim.run()
        assert a.interface("bus").level == "word"

    def test_unknown_level_raises(self):
        sim = Simulator()
        from repro.core import Interface
        from repro.protocols import packet_protocol

        def idle(comp):
            yield Advance(1.0)

        a = FunctionComponent("A", idle)
        a.add_interface(Interface("bus", packet_protocol(), out_port="o"))
        sim.add(a)
        with pytest.raises(RunLevelError):
            sim.set_runlevel("A.bus", "nonsense")
        with pytest.raises(RunLevelError):
            sim.set_runlevel("A", "nonsense")
