"""Scheduler mechanics and the remaining process commands."""

import pytest

from repro.core import (
    Advance,
    CausalityError,
    Event,
    EventKind,
    FunctionComponent,
    PortDirection,
    ProcessComponent,
    Receive,
    SaveCheckpoint,
    Send,
    Simulator,
    Subsystem,
    SwitchLevel,
    Timestamp,
)


def idle(comp):
    yield Advance(1.0)


class TestSchedulerMechanics:
    def _loaded_subsystem(self):
        subsystem = Subsystem("ss")
        fired = []

        def make(tag):
            def control(event):
                fired.append((tag, event.ts.time))
            return control

        for time, tag in [(3.0, "c"), (1.0, "a"), (2.0, "b")]:
            subsystem.scheduler.schedule(
                Event(Timestamp(time), EventKind.CONTROL, target=make(tag)))
        return subsystem, fired

    def test_control_events_dispatch_in_order(self):
        subsystem, fired = self._loaded_subsystem()
        subsystem.run()
        assert fired == [("a", 1.0), ("b", 2.0), ("c", 3.0)]
        assert subsystem.scheduler.dispatched == 3

    def test_max_events(self):
        subsystem, fired = self._loaded_subsystem()
        subsystem.run(max_events=2)
        assert len(fired) == 2

    def test_until_bound_inclusive(self):
        subsystem, fired = self._loaded_subsystem()
        subsystem.run(until=2.0)
        assert [t for __, t in fired] == [1.0, 2.0]

    def test_callable_horizon_reevaluated_per_event(self):
        """A horizon that collapses after the first dispatch stops the
        run immediately — the echo-bound mechanism in miniature."""
        subsystem, fired = self._loaded_subsystem()
        state = {"limit": 10.0}

        def horizon():
            return state["limit"]

        def clamp(event):
            state["limit"] = event.ts.time     # no further progress

        subsystem.scheduler.schedule(
            Event(Timestamp(0.5), EventKind.CONTROL, target=clamp))
        count = subsystem.run(horizon=horizon)
        assert count == 1                      # only the clamp ran
        assert subsystem.scheduler.stalls == 1

    def test_scheduling_into_past_raises(self):
        subsystem, __ = self._loaded_subsystem()
        subsystem.run()
        with pytest.raises(CausalityError):
            subsystem.scheduler.schedule(
                Event(Timestamp(0.5), EventKind.CONTROL, target=lambda e: None))

    def test_post_step_hooks_see_each_event(self):
        subsystem, __ = self._loaded_subsystem()
        seen = []
        subsystem.scheduler.post_step_hooks.append(
            lambda event: seen.append(event.ts.time))
        subsystem.run()
        assert seen == [1.0, 2.0, 3.0]


class TestSaveCheckpointCommand:
    def test_component_requests_checkpoint(self):
        """A behaviour saves a checkpoint right before risky work —
        imperative checkpointing from inside the source."""
        sim = Simulator()

        class Careful(ProcessComponent):
            def __init__(self, name):
                super().__init__(name)
                self.progress = []
                self.add_port("in", PortDirection.IN)

            def run(self):
                t, v = yield Receive("in")
                self.progress.append(v)
                yield SaveCheckpoint(label="before-risky")
                t, v = yield Receive("in")
                self.progress.append(v)

        def feeder(comp):
            for value in (1, 2):
                yield Advance(1.0)
                yield Send("out", value)

        careful = sim.add(Careful("careful"))
        feed = sim.add(FunctionComponent("feed", feeder,
                                         ports={"out": "out"}))
        sim.wire("w", feed.port("out"), careful.port("in"))
        sim.run()
        store = sim.subsystem.checkpoints
        assert len(store) == 1
        cid = store.latest()
        assert store.image(cid).label == "before-risky"
        sim.restore(cid)
        assert careful.progress == [1]
        sim.run()
        assert careful.progress == [1, 2]


class TestSwitchLevelCommand:
    def test_self_target(self):
        from repro.core import Interface
        from repro.protocols import packet_protocol
        sim = Simulator()

        class Switcher(ProcessComponent):
            def __init__(self, name):
                super().__init__(name)
                self.add_interface(Interface("bus", packet_protocol(),
                                             out_port="o"))

            def run(self):
                yield Advance(1.0)
                yield SwitchLevel("word")      # target=None: myself

        switcher = sim.add(Switcher("sw"))
        sim.run()
        assert switcher.runlevel == "word"
        assert switcher.interface("bus").level == "word"

    def test_switch_suppressed_during_replay(self):
        """Restoring replays behaviour with side effects suppressed; the
        level at the checkpoint comes from the component image, not from
        re-executing the switch."""
        from repro.core import Interface, WaitUntil
        from repro.protocols import packet_protocol
        sim = Simulator()

        class Switcher(ProcessComponent):
            def __init__(self, name):
                super().__init__(name)
                self.add_interface(Interface("bus", packet_protocol(),
                                             out_port="o"))

            def run(self):
                yield WaitUntil(1.0)
                yield SwitchLevel("word", target="sw.bus")
                yield WaitUntil(5.0)

        switcher = sim.add(Switcher("sw"))
        sim.run(until=2.0)
        assert switcher.interface("bus").level == "word"
        cid = sim.checkpoint()
        switcher.interface("bus").set_level("transaction")  # out-of-band
        sim.restore(cid)
        assert switcher.interface("bus").level == "word"
        sim.run()
        assert switcher.finished
