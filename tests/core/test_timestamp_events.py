"""Timestamp ordering and event-queue determinism."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    FOREVER,
    PRIORITY_CONTROL,
    PRIORITY_SIGNAL,
    PRIORITY_WAKE,
    ZERO,
    CausalityError,
    Event,
    EventKind,
    EventQueue,
    Timestamp,
    earliest,
)


def _evt(time, priority=PRIORITY_SIGNAL, payload=None):
    return Event(Timestamp(time, priority), EventKind.CONTROL,
                 target=lambda e: None, payload=payload)


class TestTimestamp:
    def test_time_dominates_ordering(self):
        assert Timestamp(1.0, 99, 99) < Timestamp(2.0, 0, 0)

    def test_priority_breaks_time_ties(self):
        assert Timestamp(1.0, PRIORITY_CONTROL) < Timestamp(1.0, PRIORITY_WAKE)

    def test_seq_breaks_remaining_ties(self):
        assert Timestamp(1.0, 5, 1) < Timestamp(1.0, 5, 2)

    def test_advanced(self):
        ts = Timestamp(3.0, 1, 7).advanced(0.5)
        assert ts == Timestamp(3.5, 1, 7)

    def test_advanced_rejects_negative(self):
        with pytest.raises(ValueError):
            Timestamp(3.0).advanced(-1.0)

    def test_zero_before_everything(self):
        assert ZERO <= Timestamp(0.0, PRIORITY_CONTROL, 0)

    def test_forever_after_everything(self):
        assert Timestamp(1e30, PRIORITY_WAKE, 10**9) < FOREVER

    def test_earliest(self):
        a, b = Timestamp(1.0), Timestamp(2.0)
        assert earliest(b, a) is a
        assert earliest() is FOREVER

    @given(st.lists(st.tuples(
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=0, max_value=1000)), min_size=2, max_size=50))
    def test_total_order_is_sortable(self, triples):
        stamps = [Timestamp(*t) for t in triples]
        ordered = sorted(stamps)
        for left, right in zip(ordered, ordered[1:]):
            assert left <= right


class TestEventQueue:
    def test_pops_in_time_order(self):
        q = EventQueue()
        for t in [5.0, 1.0, 3.0]:
            q.push(_evt(t))
        assert [q.pop().ts.time for _ in range(3)] == [1.0, 3.0, 5.0]

    def test_equal_times_pop_in_priority_then_push_order(self):
        q = EventQueue()
        q.push(_evt(1.0, PRIORITY_WAKE, "wake"))
        q.push(_evt(1.0, PRIORITY_SIGNAL, "sig-a"))
        q.push(_evt(1.0, PRIORITY_SIGNAL, "sig-b"))
        q.push(_evt(1.0, PRIORITY_CONTROL, "ctl"))
        assert [q.pop().payload for _ in range(4)] == \
            ["ctl", "sig-a", "sig-b", "wake"]

    def test_push_into_past_raises(self):
        q = EventQueue()
        with pytest.raises(CausalityError):
            q.push(_evt(1.0), now=2.0)

    def test_next_time(self):
        q = EventQueue()
        assert q.next_time() == float("inf")
        q.push(_evt(4.0))
        q.push(_evt(2.0))
        assert q.next_time() == 2.0

    def test_peek_does_not_consume(self):
        q = EventQueue()
        q.push(_evt(1.0, payload="x"))
        assert q.peek().payload == "x"
        assert len(q) == 1

    def test_remove_if(self):
        q = EventQueue()
        for t in [1.0, 2.0, 3.0, 4.0]:
            q.push(_evt(t))
        removed = q.remove_if(lambda e: e.ts.time > 2.0)
        assert removed == 2
        assert [q.pop().ts.time for _ in range(2)] == [1.0, 2.0]

    def test_snapshot_restore_roundtrip(self):
        q = EventQueue()
        for t in [3.0, 1.0, 2.0]:
            q.push(_evt(t))
        snap = q.snapshot()
        assert [e.ts.time for e in snap] == [1.0, 2.0, 3.0]
        q.pop()
        q.pop()
        q.restore(snap)
        assert [q.pop().ts.time for _ in range(3)] == [1.0, 2.0, 3.0]

    @given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False),
                    min_size=1, max_size=60))
    def test_pop_sequence_is_sorted(self, times):
        q = EventQueue()
        for t in times:
            q.push(_evt(t))
        popped = [q.pop().ts.time for _ in range(len(times))]
        assert popped == sorted(times)

    def test_iteration_matches_snapshot(self):
        q = EventQueue()
        for t in [9.0, 7.0]:
            q.push(_evt(t))
        assert [e.ts.time for e in q] == [7.0, 9.0]
