"""The debugger: breakpoints, stepping, watchpoints, time travel."""

import pytest

from repro.core import (
    Advance,
    FunctionComponent,
    PortDirection,
    ProcessComponent,
    Receive,
    Send,
    Simulator,
)
from repro.debug import Debugger, DebuggerError


class Counter(ProcessComponent):
    def __init__(self, name, count=10):
        super().__init__(name)
        self.count = count
        self.total = 0
        self.add_port("out", PortDirection.OUT)

    def run(self):
        for index in range(self.count):
            yield Advance(1.0)
            self.total += index
            yield Send("out", index)


def build():
    sim = Simulator()
    counter = sim.add(Counter("counter"))

    def sink(comp):
        comp.seen = []
        while True:
            t, v = yield Receive("in")
            comp.seen.append(v)

    collector = sim.add(FunctionComponent("sink", sink, ports={"in": "in"}))
    sim.wire("bus", counter.port("out"), collector.port("in"))
    return sim, counter, collector


class TestBreakpoints:
    def test_break_at_time(self):
        sim, *_ = build()
        debugger = Debugger(sim)
        bp = debugger.break_at(4.0)
        reason = debugger.run()
        assert not reason.finished
        assert reason.breakpoint is bp
        assert sim.now >= 4.0
        assert bp.hits == 1

    def test_continue_to_completion(self):
        sim, counter, collector = build()
        debugger = Debugger(sim)
        debugger.break_at(4.0)
        debugger.run()
        reason = debugger.run()
        assert reason.finished
        assert collector.seen == list(range(10))

    def test_break_on_signal_value(self):
        sim, __, collector = build()
        debugger = Debugger(sim)
        debugger.break_on_signal("bus", value=5)
        reason = debugger.run()
        assert not reason.finished
        assert reason.event.payload == 5
        assert sim.now == 6.0       # value 5 is delivered at t=6

    def test_break_on_any_signal_change(self):
        sim, *_ = build()
        debugger = Debugger(sim)
        debugger.break_on_signal("bus")
        reason = debugger.run()
        assert not reason.finished
        assert reason.event.payload == 0      # the first delivery

    def test_break_on_local_time_sees_run_ahead(self):
        """The counter runs ahead to local t=10 at start; a local-time
        breakpoint fires long before system time gets there."""
        sim, counter, __ = build()
        debugger = Debugger(sim)
        debugger.break_at_local_time("counter", 9.0)
        reason = debugger.run()
        assert not reason.finished
        assert counter.local_time >= 9.0
        assert sim.now < 9.0         # two-level time, visible

    def test_break_when_predicate(self):
        sim, counter, __ = build()
        debugger = Debugger(sim)
        debugger.break_when(lambda s: s.component("counter").total > 20,
                            description="total>20")
        reason = debugger.run()
        assert not reason.finished
        assert counter.total > 20

    def test_repeating_breakpoint(self):
        sim, *_ = build()
        debugger = Debugger(sim)
        bp = debugger.break_on_signal("bus", once=False)
        hits = 0
        while not debugger.run().finished:
            hits += 1
        assert hits == 10
        assert bp.hits == 10

    def test_delete_breakpoint(self):
        sim, *_ = build()
        debugger = Debugger(sim)
        bp = debugger.break_at(2.0)
        debugger.delete(bp.bp_id)
        assert debugger.run().finished
        with pytest.raises(DebuggerError):
            debugger.delete(bp.bp_id)

    def test_run_until_bound(self):
        sim, *_ = build()
        debugger = Debugger(sim)
        reason = debugger.run(until=3.0)
        assert reason.finished
        assert sim.now <= 3.0


class TestSteppingAndInspection:
    def test_single_step(self):
        sim, *_ = build()
        debugger = Debugger(sim)
        before = sim.subsystem.scheduler.dispatched
        debugger.step()
        assert sim.subsystem.scheduler.dispatched == before + 1

    def test_step_many(self):
        sim, __, collector = build()
        debugger = Debugger(sim)
        debugger.step(3)
        assert collector.seen == [0, 1, 2]

    def test_where_reports_components(self):
        sim, *_ = build()
        debugger = Debugger(sim)
        debugger.step(2)
        text = debugger.where()
        assert "counter" in text and "sink" in text
        assert "finished" in text or "blocked" in text

    def test_inspect_component_state(self):
        sim, counter, __ = build()
        debugger = Debugger(sim)
        debugger.run(until=3.0)
        state = debugger.inspect("counter")
        assert state["total"] == sum(range(10))   # ran ahead at start
        assert state["__finished__"] is True

    def test_trace_and_backtrace(self):
        sim, *_ = build()
        debugger = Debugger(sim)
        debugger.trace(limit=5)
        debugger.run()
        trace = debugger.backtrace()
        assert len(trace) == 5                    # ring buffer trimmed
        assert all("signal" in line for line in trace)


class TestWatchAndRewind:
    def test_watchpoint_logs_changes(self):
        sim, *_ = build()
        debugger = Debugger(sim)
        debugger.watch("bus")
        debugger.run()
        assert [record.value for record in debugger.watch_log] == \
            list(range(10))
        assert debugger.watch_log[0].time == 1.0

    def test_rewind_to_snapshot(self):
        sim, __, collector = build()
        debugger = Debugger(sim)
        debugger.run(until=3.0)
        snap = debugger.snapshot("at-3")
        debugger.run()
        assert len(collector.seen) == 10
        assert debugger.rewind(snap) == 3.0
        assert len(collector.seen) == 3
        debugger.run()
        assert len(collector.seen) == 10

    def test_rewind_without_snapshot_raises(self):
        sim, *_ = build()
        with pytest.raises(DebuggerError):
            Debugger(sim).rewind()

    def test_rewind_defaults_to_latest(self):
        sim, __, collector = build()
        debugger = Debugger(sim)
        debugger.run(until=2.0)
        debugger.snapshot()
        debugger.run(until=5.0)
        debugger.snapshot()
        debugger.run()
        debugger.rewind()
        assert len(collector.seen) == 5
