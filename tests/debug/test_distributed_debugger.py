"""Debugging the system as a whole: the distributed debugger."""

import pytest

from repro.core import Advance, FunctionComponent, Receive, Send
from repro.debug import DebuggerError
from repro.debug.distributed import DistributedDebugger
from repro.distributed import CoSimulation


def build():
    cosim = CoSimulation()
    ss_a = cosim.add_subsystem(cosim.add_node("na"), "sa")
    ss_b = cosim.add_subsystem(cosim.add_node("nb"), "sb")

    def produce(comp):
        for index in range(8):
            yield Advance(1.0)
            yield Send("out", index)

    def consume(comp):
        comp.got = []
        for __ in range(8):
            t, v = yield Receive("in")
            comp.got.append(v)

    p = FunctionComponent("p", produce, ports={"out": "out"})
    c = FunctionComponent("c", consume, ports={"in": "in"})
    ss_a.add(p)
    ss_b.add(c)
    channel = cosim.connect(ss_a, ss_b)
    channel.split_net(ss_a.wire("w", p.port("out")),
                      ss_b.wire("w", c.port("in")))
    return cosim, c


class TestGlobalBreakpoints:
    def test_break_at_global_time(self):
        cosim, consumer = build()
        debugger = DistributedDebugger(cosim)
        reason = debugger.run()   # no breakpoints: runs to completion
        assert reason.finished

    def test_break_on_signal_across_nodes(self):
        cosim, consumer = build()
        debugger = DistributedDebugger(cosim)
        bp = debugger.break_on_signal("w", value=3)
        reason = debugger.run()
        assert not reason.finished
        assert reason.event.payload == 3
        assert consumer.got[-1] <= 3
        resumed = debugger.run()
        assert resumed.finished
        assert consumer.got == list(range(8))

    def test_break_at_subsystem_time(self):
        cosim, consumer = build()
        debugger = DistributedDebugger(cosim)
        debugger.break_at_subsystem_time("sb", 4.0)
        reason = debugger.run()
        assert not reason.finished
        assert cosim.subsystem("sb").now >= 4.0

    def test_break_at_component_local_time(self):
        cosim, consumer = build()
        debugger = DistributedDebugger(cosim)
        debugger.break_at_local_time("c", 2.0)
        reason = debugger.run()
        assert not reason.finished
        assert cosim.component("c").local_time >= 2.0

    def test_break_when_predicate(self):
        cosim, consumer = build()
        debugger = DistributedDebugger(cosim)
        debugger.break_when(lambda cs: len(cs.component("c").got) >= 5,
                            description="five consumed")
        reason = debugger.run()
        assert not reason.finished
        assert len(consumer.got) >= 5

    def test_delete(self):
        cosim, consumer = build()
        debugger = DistributedDebugger(cosim)
        bp = debugger.break_on_signal("w")
        debugger.delete(bp.bp_id)
        assert debugger.run().finished
        with pytest.raises(DebuggerError):
            debugger.delete(bp.bp_id)


class TestGlobalInspection:
    def test_where_spans_nodes(self):
        cosim, consumer = build()
        debugger = DistributedDebugger(cosim)
        debugger.break_on_signal("w", value=2)
        debugger.run()
        text = debugger.where()
        assert "sa @ na" in text
        assert "sb @ nb" in text
        assert "p:" in text and "c:" in text
        assert "__channel" not in text

    def test_inspect_across_subsystems(self):
        cosim, consumer = build()
        debugger = DistributedDebugger(cosim)
        debugger.break_on_signal("w", value=2)
        debugger.run()
        # The break fires on the first delivery of value 2 anywhere on the
        # split net — possibly on the sender-side hidden port, before the
        # consumer itself has received it.
        assert debugger.inspect("c")["got"] in ([0, 1], [0, 1, 2])

    def test_watch_both_halves(self):
        cosim, consumer = build()
        debugger = DistributedDebugger(cosim)
        debugger.watch("w")
        debugger.run()
        # the source half posts, the destination half injects: both logged
        sides = {record.net for record in debugger.watch_log}
        assert sides == {"sa:w", "sb:w"}
        with pytest.raises(DebuggerError):
            debugger.watch("nonexistent")


class TestDistributedTimeTravel:
    def test_snapshot_and_rewind(self):
        cosim, consumer = build()
        debugger = DistributedDebugger(cosim)
        debugger.break_on_signal("w", value=2)
        debugger.run()
        snap = debugger.snapshot()
        assert debugger.run().finished
        assert consumer.got == list(range(8))
        rewound_to = debugger.rewind(snap)
        assert len(consumer.got) <= 3
        assert debugger.run().finished
        assert consumer.got == list(range(8))

    def test_rewind_without_snapshot(self):
        cosim, consumer = build()
        debugger = DistributedDebugger(cosim)
        with pytest.raises(DebuggerError):
            debugger.rewind()

    def test_rewind_unknown_id(self):
        cosim, consumer = build()
        debugger = DistributedDebugger(cosim)
        with pytest.raises(DebuggerError):
            debugger.rewind("snap-99999")
