"""The VCD waveform tracer."""

import pytest

from repro.core import (
    Advance,
    FunctionComponent,
    Receive,
    Send,
    Simulator,
    WaitUntil,
)
from repro.debug import VcdError, VcdTracer
from repro.debug.vcd import _identifier


def build_and_run(tracer=None, values=(1, 2, 3)):
    sim = Simulator()

    def producer(comp):
        for value in values:
            yield Advance(1e-6)
            yield Send("out", value)

    def consumer(comp):
        while True:
            yield Receive("in")

    p = sim.add(FunctionComponent("p", producer, ports={"out": "out"}))
    c = sim.add(FunctionComponent("c", consumer, ports={"in": "in"}))
    net = sim.wire("data", p.port("out"), c.port("in"))
    if tracer is not None:
        tracer.trace_net(net, width=8)
    sim.run()
    return sim


class TestIdentifiers:
    def test_first_ids(self):
        assert _identifier(0) == "!"
        assert _identifier(1) == '"'

    def test_ids_unique_over_large_range(self):
        ids = {_identifier(i) for i in range(5000)}
        assert len(ids) == 5000

    def test_multichar_rollover(self):
        assert len(_identifier(94)) == 2


class TestTracing:
    def test_net_changes_recorded(self):
        tracer = VcdTracer()
        build_and_run(tracer)
        assert tracer.change_count() == 3

    def test_render_structure(self):
        tracer = VcdTracer(timescale="1 ns", module="demo")
        build_and_run(tracer)
        text = tracer.render()
        assert "$timescale 1 ns $end" in text
        assert "$scope module demo $end" in text
        assert "$var wire 8 ! data $end" in text
        assert "$enddefinitions $end" in text
        # changes at 1, 2, 3 microseconds = 1000, 2000, 3000 ns
        assert "#1000" in text and "#3000" in text
        assert "b1 !" in text and "b11 !" in text

    def test_write_file(self, tmp_path):
        tracer = VcdTracer()
        build_and_run(tracer)
        path = tracer.write(str(tmp_path / "wave.vcd"))
        content = open(path).read()
        assert content.startswith("$date")

    def test_timescale_validation(self):
        with pytest.raises(VcdError):
            VcdTracer(timescale="1 parsec")

    def test_duplicate_signal_rejected(self):
        sim = Simulator()

        def idle(comp):
            yield Advance(1.0)

        a = sim.add(FunctionComponent("a", idle, ports={"o": "out"}))
        net = sim.wire("n", a.port("o"))
        tracer = VcdTracer()
        tracer.trace_net(net)
        with pytest.raises(VcdError):
            tracer.trace_net(net)

    def test_value_encodings(self):
        tracer = VcdTracer()
        sim = Simulator()

        def producer(comp):
            for value in (True, 5, 2.5, b"abcd", {"x": 1}):
                yield Advance(1e-6)
                yield Send("out", value)

        def consumer(comp):
            while True:
                yield Receive("in")

        p = sim.add(FunctionComponent("p", producer, ports={"out": "out"}))
        c = sim.add(FunctionComponent("c", consumer, ports={"in": "in"}))
        net = sim.wire("mixed", p.port("out"), c.port("in"))
        tracer.trace_net(net, width=8)
        sim.run()
        text = tracer.render()
        assert "r2.5 !" in text              # float -> real
        assert "b101 !" in text              # int -> vector
        assert "b100 !" in text              # bytes -> length (4)

    def test_negative_int_masked(self):
        tracer = VcdTracer()
        sim = Simulator()

        def producer(comp):
            yield Send("out", -1)

        def consumer(comp):
            yield Receive("in")

        p = sim.add(FunctionComponent("p", producer, ports={"out": "out"}))
        c = sim.add(FunctionComponent("c", consumer, ports={"in": "in"}))
        net = sim.wire("neg", p.port("out"), c.port("in"))
        tracer.trace_net(net, width=4)
        sim.run()
        assert "b1111 !" in tracer.render()


class TestLocalTimeTraces:
    def test_two_level_time_visualised(self):
        """Component local times appear as real signals sampled alongside
        net activity — the run-ahead is visible in the waveform."""
        tracer = VcdTracer(timescale="1 us")
        sim = Simulator()

        def stepper(comp):
            for __ in range(3):
                yield WaitUntil(comp.local_time + 1e-6)
                yield Send("out", 1)

        def consumer(comp):
            while True:
                yield Receive("in")

        p = sim.add(FunctionComponent("p", stepper, ports={"out": "out"}))
        c = sim.add(FunctionComponent("c", consumer, ports={"in": "in"}))
        net = sim.wire("tick", p.port("out"), c.port("in"))
        tracer.trace_net(net, width=1)
        tracer.trace_local_time(p)
        sim.run()
        text = tracer.render()
        assert "$var real 64" in text
        assert "p.localtime" in text
        assert tracer.change_count() > 3
