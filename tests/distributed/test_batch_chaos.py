"""Determinism of the batched fast path under seeded faults.

The acceptance bar for batching (ISSUE 3): coalescing frames must be
*invisible* to the fault plane.  The injector rolls its decision per
logical message, in original send order, so a seeded chaos run must
produce the same results AND the same fault counters whether batching is
on or off — on both transports.

Delay faults are deliberately absent from these plans: ``delay_ticks``
counts destination *poll* calls, and the poll cadence legitimately
differs between the batched and unbatched pipelines (batching exists to
change when things hit the wire).  Drop / duplicate / reorder decisions
are rolled at send time against per-link ordinals and are cadence-free.
"""

import pytest

from repro.distributed import ThreadedCoSimulation
from repro.faults import FaultPlan, LinkFaults
from repro.transport import TcpTransport

from .test_chaos import build, fault_free_reference

#: Same rates as test_chaos.CHAOS minus the delay component (see module
#: docstring for why delay ticks are excluded here).
CHAOS_NO_DELAY = LinkFaults(drop=0.15, duplicate=0.1, reorder=0.1)


def _run(batching, *, seed=42, faults=CHAOS_NO_DELAY):
    sink = []
    cosim = build(sink, fault_plan=FaultPlan(seed=seed, default=faults),
                  batching=batching)
    cosim.run()
    report = cosim.report(title="batch-chaos")
    return sink, cosim.fault_injector.summary(), report


class TestBatchedChaosEquivalence:
    def test_same_seed_same_results_batching_on_and_off(self):
        base_sink, base_faults, __ = _run(False)
        batch_sink, batch_faults, __ = _run(True)
        assert batch_sink == base_sink == fault_free_reference()
        assert batch_faults == base_faults
        assert base_faults["fault.drops"] > 0       # chaos actually ran

    @pytest.mark.parametrize("seed", [1, 7, 99])
    def test_fault_decisions_identical_across_seeds(self, seed):
        """Per-link ordinals drive the plan's hash stream; batching must
        not perturb them for any seed."""
        __, base_faults, __ = _run(False, seed=seed)
        __, batch_faults, __ = _run(True, seed=seed)
        assert batch_faults == base_faults

    def test_batched_chaos_run_is_replayable(self):
        first = _run(True, seed=5)
        second = _run(True, seed=5)
        assert first[0] == second[0]
        assert first[1] == second[1]

    def test_event_counts_and_times_match_unbatched(self):
        """Beyond the sink: virtual times and dispatched-event counts of
        every subsystem must be bit-identical between the two modes."""
        __, __, base_report = _run(False)
        __, __, batch_report = _run(True)

        def progress(report):
            return sorted((row["name"], row["time"], row["dispatched"])
                          for row in report.subsystems)

        assert progress(batch_report) == progress(base_report)

    def test_batching_sends_fewer_frames_under_chaos(self):
        __, __, base_report = _run(False)
        __, __, batch_report = _run(True)
        assert batch_report.link_totals()["frames"] \
            < base_report.link_totals()["frames"]

    def test_duplicates_still_deduplicated_when_coalesced(self):
        """A duplicate-heavy plan queues the copy in the same frame; the
        poll-side suppressor must still drop it."""
        sink, faults, __ = _run(True, faults=LinkFaults(duplicate=0.4))
        assert sink == fault_free_reference()
        assert faults["fault.duplicates"] > 0


class TestBatchedChaosOverTcp:
    """Same bar over real sockets and the threaded executor."""

    VALUES = list(range(10))

    def _run_tcp(self, batching, *, seed=21):
        from ..transport.test_tcp_failures import _build_pipeline
        with TcpTransport() as transport:
            runner = ThreadedCoSimulation(
                transport=transport, batching=batching,
                fault_plan=FaultPlan(seed=seed,
                                     default=LinkFaults(drop=0.15,
                                                        duplicate=0.1)))
            cons = _build_pipeline(runner, self.VALUES)
            runner.run(timeout=60.0)
            return list(cons.got), runner.fault_injector.summary()

    def test_same_seed_same_results_batching_on_and_off(self):
        base_got, base_faults = self._run_tcp(False)
        batch_got, batch_faults = self._run_tcp(True)
        assert batch_got == base_got
        assert [v for __, v in batch_got] == self.VALUES
        assert batch_faults == base_faults
        assert base_faults["fault.drops"] > 0
