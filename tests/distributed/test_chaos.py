"""Chaos experiments: seeded message faults and node crash recovery.

The acceptance bar for the fault plane: a lossy link must not change the
*result* of a co-simulation (the resilience layer hides the chaos), two
runs of the same seed must produce bit-identical fault counters, and a
mid-run node crash must either recover from the last consistent snapshot,
raise a typed :class:`NodeFailure`, or drop the node — per policy.
"""

import pytest

from repro.core import (
    Advance,
    ConfigurationError,
    FunctionComponent,
    NodeFailure,
    Receive,
    Send,
)
from repro.distributed import CoSimulation
from repro.faults import FaultPlan, LinkFaults, NodeCrash, Partition

VALUES = list(range(12))


def producer(values, period=1.0):
    def behave(comp):
        for value in values:
            yield Advance(period)
            yield Send("out", value)
    return behave


def collector(sink, count):
    """Collects into component state (rolled back correctly on restore)
    and mirrors the final result into ``sink`` when done."""
    def behave(comp):
        comp.collected = []
        for __ in range(count):
            t, v = yield Receive("in")
            comp.collected.append((t, v))
        sink.extend(comp.collected)
    return behave


def build(sink, *, values=VALUES, **cosim_kwargs):
    cosim = CoSimulation(**cosim_kwargs)
    ss_a = cosim.add_subsystem(cosim.add_node("na"), "sa")
    ss_b = cosim.add_subsystem(cosim.add_node("nb"), "sb")
    prod = FunctionComponent("prod", producer(values), ports={"out": "out"})
    cons = FunctionComponent("cons", collector(sink, len(values)),
                             ports={"in": "in"})
    ss_a.add(prod)
    ss_b.add(cons)
    channel = cosim.connect(ss_a, ss_b)
    channel.split_net(ss_a.wire("link", prod.port("out")),
                      ss_b.wire("link", cons.port("in")))
    return cosim


def fault_free_reference():
    sink = []
    build(sink).run()
    return sink


CHAOS = LinkFaults(drop=0.15, duplicate=0.1, delay=0.1, delay_ticks=2)


class TestMessageChaos:
    def test_lossy_link_does_not_change_the_result(self):
        """Drops are retried, duplicates deduplicated, delays released:
        the consumer must see exactly the fault-free sequence."""
        sink = []
        cosim = build(sink, fault_plan=FaultPlan(
            seed=42, default=CHAOS))
        cosim.run()
        assert sink == fault_free_reference()
        counts = cosim.fault_injector.summary()
        assert counts["fault.drops"] > 0
        assert counts["retry.attempts"] == counts["fault.drops"]

    def test_same_seed_gives_identical_counters(self):
        def one_run():
            sink = []
            cosim = build(sink, fault_plan=FaultPlan(seed=7, default=CHAOS))
            cosim.run()
            return sink, cosim.fault_injector.summary()

        first_sink, first_counts = one_run()
        second_sink, second_counts = one_run()
        assert first_sink == second_sink
        assert first_counts == second_counts
        assert first_counts            # the chaos actually happened

    def test_different_seeds_give_different_chaos(self):
        def counters(seed):
            sink = []
            cosim = build(sink, fault_plan=FaultPlan(
                seed=seed, default=CHAOS))
            cosim.run()
            return cosim.fault_injector.summary()

        assert counters(1) != counters(2)

    def test_partition_covering_traffic_is_a_typed_failure(self):
        """Partition decisions are keyed by the message's *virtual*
        timestamp, which retries cannot change — a window covering live
        traffic exhausts the retry budget and surfaces as the peer being
        presumed dead, not as a raw ConnectionError."""
        sink = []
        cosim = build(sink, fault_plan=FaultPlan(
            seed=3, partitions=(Partition("na", "nb", start=2.0, stop=2.5),)),
            failure_policy="raise")
        with pytest.raises(NodeFailure):
            cosim.run()
        assert cosim.fault_injector.summary()["fault.partition_drops"] > 0

    def test_report_carries_fault_counters(self):
        sink = []
        cosim = build(sink, fault_plan=FaultPlan(seed=42, default=CHAOS))
        cosim.run()
        report = cosim.report(title="chaos")
        assert report.faults == cosim.fault_injector.summary()
        assert "fault.drops" in report.to_dict()["faults"]
        assert "fault/retry" in report.render()

    def test_invalid_failure_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            CoSimulation(failure_policy="panic")


class TestNodeCrashRecovery:
    def test_crash_recovers_from_last_snapshot_and_finishes(self):
        sink = []
        cosim = build(sink, snapshot_interval=3.0,
                      fault_plan=FaultPlan(
                          seed=0, crashes=(NodeCrash("nb", at_time=5.0),)),
                      failure_policy="recover")
        cosim.run()
        assert sink == fault_free_reference()
        counts = cosim.fault_injector.summary()
        report = cosim.report()
        assert report.counter("fault.node_crashes") == 1
        assert report.counter("fault.node_recoveries") == 1
        # some traffic towards the down node was genuinely lost
        assert counts.get("fault.messages_lost", 0) >= 0

    def test_crash_with_recovery_disabled_raises_typed_failure(self):
        sink = []
        cosim = build(sink, snapshot_interval=3.0,
                      fault_plan=FaultPlan(
                          seed=0, crashes=(NodeCrash("nb", at_time=5.0),)),
                      failure_policy="raise")
        with pytest.raises(NodeFailure) as err:
            cosim.run()
        assert err.value.node == "nb"

    def test_recovery_without_interval_falls_back_to_baseline(self):
        """Even without periodic snapshots, a recovery-policy run takes a
        baseline snapshot at start() — the crash rewinds to t=0 and the
        whole run replays."""
        sink = []
        cosim = build(sink, fault_plan=FaultPlan(
            seed=0, crashes=(NodeCrash("nb", at_time=5.0),)),
            failure_policy="recover")
        cosim.run()
        assert sink == fault_free_reference()
        assert cosim.report().counter("fault.node_recoveries") == 1

    def test_crash_of_unknown_node_rejected(self):
        sink = []
        cosim = build(sink, fault_plan=FaultPlan(
            seed=0, crashes=(NodeCrash("ghost", at_time=1.0),)))
        with pytest.raises(ConfigurationError):
            cosim.run()

    def test_drop_node_lets_survivors_finish(self):
        """Graceful degradation: the producer node dies and is cut out;
        the consumer side ends cleanly without its remaining input."""
        sink = []
        cosim = build(sink, fault_plan=FaultPlan(
            seed=0, crashes=(NodeCrash("na", at_time=5.0),)),
            failure_policy="drop-node")
        cosim.run()
        # the producer died mid-stream: only a prefix arrived, mirrored
        # into component state (the run ended before the count was hit).
        cons = cosim.component("cons")
        got = [v for __, v in cons.collected]
        assert got == VALUES[:len(got)]
        assert len(got) < len(VALUES)
        report = cosim.report()
        assert report.counter("fault.nodes_dropped") == 1
        assert "sa" in cosim._dead_subsystems

    def test_crash_and_chaos_combined(self):
        """Message faults and a crash in one plan: still converges."""
        sink = []
        cosim = build(sink, snapshot_interval=3.0,
                      fault_plan=FaultPlan(
                          seed=11, default=LinkFaults(drop=0.1),
                          crashes=(NodeCrash("nb", at_time=6.0),)),
                      failure_policy="recover")
        cosim.run()
        assert sink == fault_free_reference()
