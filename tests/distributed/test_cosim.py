"""Distributed co-simulation: conservative discipline, parity with the
single-host simulator, stalls, safe-time traffic."""

import pytest

from repro.core import (
    Advance,
    DeadlockError,
    FunctionComponent,
    Receive,
    Send,
    Simulator,
    WaitUntil,
)
from repro.distributed import ChannelMode, CoSimulation
from repro.transport import LAN


def producer_behaviour(values, period=1.0):
    def produce(comp):
        for value in values:
            yield Advance(period)
            yield Send("out", value)
    return produce


def collector_behaviour(sink, count):
    def consume(comp):
        for __ in range(count):
            t, v = yield Receive("in")
            sink.append((t, v))
    return consume


def build_two_subsystems(values, sink, *, mode=ChannelMode.CONSERVATIVE,
                         delay=0.0, model=None):
    cosim = CoSimulation()
    node_a = cosim.add_node("alpha")
    node_b = cosim.add_node("beta")
    ss_a = cosim.add_subsystem(node_a, "ss-a")
    ss_b = cosim.add_subsystem(node_b, "ss-b")
    if model is not None:
        cosim.set_link_model("alpha", "beta", model)
    producer = FunctionComponent("producer", producer_behaviour(values),
                                 ports={"out": "out"})
    consumer = FunctionComponent("consumer",
                                 collector_behaviour(sink, len(values)),
                                 ports={"in": "in"})
    ss_a.add(producer)
    ss_b.add(consumer)
    channel = cosim.connect(ss_a, ss_b, mode=mode, delay=delay)
    net_a = ss_a.wire("link", producer.port("out"))
    net_b = ss_b.wire("link", consumer.port("in"))
    channel.split_net(net_a, net_b)
    return cosim


def single_host_reference(values):
    sink = []
    sim = Simulator()
    producer = FunctionComponent("producer", producer_behaviour(values),
                                 ports={"out": "out"})
    consumer = FunctionComponent("consumer",
                                 collector_behaviour(sink, len(values)),
                                 ports={"in": "in"})
    sim.add(producer)
    sim.add(consumer)
    sim.wire("link", producer.port("out"), consumer.port("in"))
    sim.run()
    return sink


class TestConservativePipeline:
    def test_matches_single_host_reference(self):
        values = list(range(12))
        sink = []
        cosim = build_two_subsystems(values, sink)
        cosim.run()
        assert sink == single_host_reference(values)

    def test_channel_delay_shifts_arrivals(self):
        values = [7, 8]
        sink = []
        cosim = build_two_subsystems(values, sink, delay=0.5)
        cosim.run()
        assert sink == [(1.5, 7), (2.5, 8)]

    def test_finished_and_times(self):
        sink = []
        cosim = build_two_subsystems([1, 2, 3], sink)
        cosim.run()
        assert cosim.finished()
        assert cosim.component("consumer").local_time == 3.0
        assert cosim.global_time() >= 3.0

    def test_safe_time_requests_happen(self):
        sink = []
        cosim = build_two_subsystems(list(range(5)), sink)
        cosim.run()
        assert cosim.safe_time_requests() > 0

    def test_deterministic_across_runs(self):
        def one_run():
            sink = []
            cosim = build_two_subsystems(list(range(20)), sink)
            cosim.run()
            return sink, cosim.safe_time_requests()

        assert one_run() == one_run()

    def test_accounting_sees_channel_traffic(self):
        sink = []
        cosim = build_two_subsystems([1, 2, 3], sink, model=LAN)
        cosim.run()
        stats = cosim.transport.accounting
        assert stats.total_messages > 0
        link = stats.links[("alpha", "beta")]
        assert link.model is LAN
        assert link.delay > 0

    def test_run_until_bound(self):
        values = list(range(10))
        sink = []
        cosim = build_two_subsystems(values, sink)
        cosim.run(until=4.0)
        assert [v for __, v in sink] == [0, 1, 2, 3]
        cosim.run()
        assert [v for __, v in sink] == values


class TestBidirectionalPingPong:
    """The self-restriction-removal / echo-bound machinery: two
    subsystems that strictly alternate must not deadlock and must
    interleave exactly as on one host."""

    @staticmethod
    def _ping(comp):
        for i in range(8):
            yield Advance(1.0)
            yield Send("tx", ("ping", i))
            t, v = yield Receive("rx")
            assert v == ("pong", i), v

    @staticmethod
    def _pong(comp):
        while True:
            t, (tag, i) = yield Receive("rx")
            yield Advance(0.25)
            yield Send("tx", ("pong", i))

    def _build_distributed(self, delay=0.0):
        cosim = CoSimulation()
        ss_a = cosim.add_subsystem(cosim.add_node("na"), "sa")
        ss_b = cosim.add_subsystem(cosim.add_node("nb"), "sb")
        ping = FunctionComponent("ping", self._ping,
                                 ports={"tx": "out", "rx": "in"})
        pong = FunctionComponent("pong", self._pong,
                                 ports={"tx": "out", "rx": "in"})
        ss_a.add(ping)
        ss_b.add(pong)
        channel = cosim.connect(ss_a, ss_b, delay=delay)
        fwd_a = ss_a.wire("fwd", ping.port("tx"))
        fwd_b = ss_b.wire("fwd", pong.port("rx"))
        bwd_a = ss_a.wire("bwd", ping.port("rx"))
        bwd_b = ss_b.wire("bwd", pong.port("tx"))
        channel.split_net(fwd_a, fwd_b)
        channel.split_net(bwd_b, bwd_a)
        return cosim, ping, pong

    def test_completes_without_deadlock(self):
        cosim, ping, pong = self._build_distributed()
        cosim.run()
        assert ping.finished
        assert ping.local_time == pytest.approx(8 * 1.25)

    def test_with_channel_delay(self):
        cosim, ping, pong = self._build_distributed(delay=0.1)
        cosim.run()
        assert ping.finished
        # each round: 1.0 compute + 0.1 out + 0.25 + 0.1 back
        assert ping.local_time == pytest.approx(8 * 1.45)

    def test_three_subsystem_chain(self):
        """A -> B -> C with replies B -> A: simple cycles only."""
        cosim = CoSimulation()
        ss = {name: cosim.add_subsystem(cosim.add_node(f"n-{name}"), name)
              for name in ("a", "b", "c")}
        results = []

        def head(comp):
            for i in range(5):
                yield Advance(1.0)
                yield Send("tx", i)
                t, v = yield Receive("rx")
                results.append((t, v))

        def middle(comp):
            while True:
                t, v = yield Receive("rx")
                yield Advance(0.1)
                yield Send("fwd", v * 10)
                yield Send("back", v)

        def tail(comp):
            total = 0
            while True:
                t, v = yield Receive("rx")
                total += v
                comp.total = total

        a = FunctionComponent("a", head, ports={"tx": "out", "rx": "in"})
        b = FunctionComponent("b", middle,
                              ports={"rx": "in", "fwd": "out", "back": "out"})
        c = FunctionComponent("c", tail, ports={"rx": "in"})
        ss["a"].add(a)
        ss["b"].add(b)
        ss["c"].add(c)
        ch_ab = cosim.connect(ss["a"], ss["b"])
        ch_bc = cosim.connect(ss["b"], ss["c"])
        ch_ab.split_net(ss["a"].wire("ab", a.port("tx")),
                        ss["b"].wire("ab", b.port("rx")))
        ch_ab.split_net(ss["b"].wire("ba", b.port("back")),
                        ss["a"].wire("ba", a.port("rx")))
        ch_bc.split_net(ss["b"].wire("bc", b.port("fwd")),
                        ss["c"].wire("bc", c.port("rx")))
        cosim.run()
        assert [v for __, v in results] == [0, 1, 2, 3, 4]
        assert c.total == 100   # (0+1+2+3+4)*10


class TestStallsAndFig3:
    def test_receiver_stalls_while_waiting_for_grants(self):
        """Fig. 3: a subsystem with a pending local event must stall until
        the peer's safe time covers it."""
        cosim = CoSimulation()
        ss1 = cosim.add_subsystem(cosim.add_node("n1"), "ss1")
        ss2 = cosim.add_subsystem(cosim.add_node("n2"), "ss2")

        def slow_sender(comp):
            # C4's peer: sends late, forcing ss1 to hold at its horizon.
            yield Advance(15.0)
            yield Send("out", "x")

        def c4(comp):
            # Has a self-scheduled event at t=20 it must NOT process
            # before ss2's message at 15 arrives.
            comp.got = None
            t = yield WaitUntil(20.0)
            comp.wait_done_at = t

        def c4_listener(comp):
            t, v = yield Receive("in")
            comp.got = (t, v)

        sender = FunctionComponent("sender", slow_sender, ports={"out": "out"})
        waiter = FunctionComponent("waiter", c4)
        listener = FunctionComponent("listener", c4_listener,
                                     ports={"in": "in"})
        ss2.add(sender)
        ss1.add(waiter)
        ss1.add(listener)
        channel = cosim.connect(ss1, ss2)
        net1 = ss1.wire("x", listener.port("in"))
        net2 = ss2.wire("x", sender.port("out"))
        channel.split_net(net1, net2)
        cosim.run()
        assert listener.got == (15.0, "x")
        assert waiter.wait_done_at == 20.0
        # ss1 must have stalled at least once waiting for ss2's grant.
        assert cosim.stalls() >= 1


class TestDeadlockDetection:
    def test_blocked_receive_terminates_cleanly(self):
        """A consumer waiting forever just ends the run (no event left),
        it is not a deadlock."""
        sink = []
        cosim = build_two_subsystems([], sink)
        # producer sends nothing; consumer expects nothing
        cosim.run()
        assert cosim.finished()
