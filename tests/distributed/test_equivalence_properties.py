"""Property-based equivalence: distribution must never change behaviour.

The framework's core promise is that splitting a design across subsystems,
nodes and synchronization modes is *transparent*: the simulated system
behaves identically.  Hypothesis generates random pipeline/fan-out
workloads and random partitions; every placement — single host,
conservative split, optimistic split — must produce the identical
observable trace.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Advance,
    FunctionComponent,
    PortDirection,
    ProcessComponent,
    Receive,
    Send,
    Simulator,
)
from repro.distributed import ChannelMode, CoSimulation, Design, deploy

# ---------------------------------------------------------------------------
# workload generation
# ---------------------------------------------------------------------------


class Source(ProcessComponent):
    def __init__(self, name, values, period):
        super().__init__(name)
        self.values = list(values)
        self.period = period
        self.add_port("out", PortDirection.OUT)

    def run(self):
        for value in self.values:
            yield Advance(self.period)
            yield Send("out", value)


class Stage(ProcessComponent):
    """Transforms and forwards; the transform depends on its name so each
    stage is distinguishable."""

    def __init__(self, name, delay):
        super().__init__(name)
        self.delay = delay
        self.add_port("in", PortDirection.IN)
        self.add_port("out", PortDirection.OUT)

    def run(self):
        while True:
            t, value = yield Receive("in")
            yield Advance(self.delay)
            yield Send("out", (value * 3 + len(self.name)) % 1009)


class Sink(ProcessComponent):
    def __init__(self, name, count):
        super().__init__(name)
        self.count = count
        self.trace = []
        self.add_port("in", PortDirection.IN)

    def run(self):
        for __ in range(self.count):
            t, value = yield Receive("in")
            self.trace.append((round(t, 9), value))


def build_design(values, stage_delays):
    design = Design("pipeline")
    design.add(Source("src", values, 1.0))
    previous = ("src", "out")
    for index, delay in enumerate(stage_delays):
        name = f"stage{index}"
        design.add(Stage(name, delay))
        design.connect(f"net{index}", previous, (name, "in"))
        previous = (name, "out")
    design.add(Sink("sink", len(values)))
    design.connect("netZ", previous, ("sink", "in"))
    return design


def run_placement(values, stage_delays, assignment, mode):
    design = build_design(values, stage_delays)
    cosim = CoSimulation(
        snapshot_interval=3.0 if mode is ChannelMode.OPTIMISTIC else None)
    deploy(design, assignment, cosim, mode=mode)
    cosim.run()
    return cosim.component("sink").trace


values_strategy = st.lists(st.integers(min_value=0, max_value=999),
                           min_size=1, max_size=6)
delays_strategy = st.lists(
    st.sampled_from([0.0, 0.125, 0.25, 0.5, 1.0]), min_size=1, max_size=4)


def component_names(stage_count):
    return ["src"] + [f"stage{i}" for i in range(stage_count)] + ["sink"]


@st.composite
def workload_and_partition(draw):
    values = draw(values_strategy)
    delays = draw(delays_strategy)
    names = component_names(len(delays))
    homes = draw(st.lists(st.sampled_from(["a", "b"]),
                          min_size=len(names), max_size=len(names)))
    assignment = dict(zip(names, homes))
    return values, delays, assignment


class TestPlacementEquivalence:
    @given(workload_and_partition())
    @settings(max_examples=25, deadline=None)
    def test_conservative_split_matches_single_host(self, case):
        values, delays, assignment = case
        single = {name: "solo" for name in assignment}
        reference = run_placement(values, delays, single,
                                  ChannelMode.CONSERVATIVE)
        split = run_placement(values, delays, assignment,
                              ChannelMode.CONSERVATIVE)
        assert split == reference

    @given(workload_and_partition())
    @settings(max_examples=12, deadline=None)
    def test_optimistic_split_matches_single_host(self, case):
        values, delays, assignment = case
        single = {name: "solo" for name in assignment}
        reference = run_placement(values, delays, single,
                                  ChannelMode.CONSERVATIVE)
        split = run_placement(values, delays, assignment,
                              ChannelMode.OPTIMISTIC)
        assert split == reference

    @given(workload_and_partition())
    @settings(max_examples=10, deadline=None)
    def test_distributed_runs_are_deterministic(self, case):
        values, delays, assignment = case
        first = run_placement(values, delays, assignment,
                              ChannelMode.CONSERVATIVE)
        second = run_placement(values, delays, assignment,
                               ChannelMode.CONSERVATIVE)
        assert first == second


class TestCheckpointEquivalence:
    @given(values_strategy, delays_strategy,
           st.floats(min_value=0.5, max_value=5.0))
    @settings(max_examples=15, deadline=None)
    def test_restore_and_rerun_matches_straight_run(self, values, delays,
                                                    checkpoint_at):
        """For any workload, interrupting at any point with a checkpoint,
        running on, rewinding and re-running yields the straight-run
        trace."""
        design = build_design(values, delays)
        sim = Simulator()
        for component in design.components.values():
            sim.add(component)
        for spec in design.nets.values():
            ports = [design.components[c].port(p) for c, p in spec.endpoints]
            sim.wire(spec.name, *ports)
        sink = sim.component("sink")

        sim.run(until=checkpoint_at)
        cid = sim.checkpoint()
        sim.run()
        straight = list(sink.trace)
        sim.restore(cid)
        sim.run()
        assert sink.trace == straight
