"""Executor edge cases: bounds, deadlock reporting, periodic snapshots,
global switchpoints, misconfiguration errors."""

import pytest

from repro.core import (
    Advance,
    ConfigurationError,
    FunctionComponent,
    Interface,
    Receive,
    ReceiveTransfer,
    Send,
    Transfer,
    WaitUntil,
)
from repro.distributed import ChannelMode, CoSimulation
from repro.protocols import packet_protocol


def simple_pair():
    cosim = CoSimulation()
    ss_a = cosim.add_subsystem(cosim.add_node("na"), "sa")
    ss_b = cosim.add_subsystem(cosim.add_node("nb"), "sb")

    def produce(comp):
        for index in range(5):
            yield Advance(1.0)
            yield Send("out", index)

    def consume(comp):
        comp.got = []
        for __ in range(5):
            t, v = yield Receive("in")
            comp.got.append(v)

    p = FunctionComponent("p", produce, ports={"out": "out"})
    c = FunctionComponent("c", consume, ports={"in": "in"})
    ss_a.add(p)
    ss_b.add(c)
    channel = cosim.connect(ss_a, ss_b)
    channel.split_net(ss_a.wire("w", p.port("out")),
                      ss_b.wire("w", c.port("in")))
    return cosim, c


class TestRunBounds:
    def test_until_is_respected_and_resumable(self):
        cosim, consumer = simple_pair()
        cosim.run(until=2.0)
        assert consumer.got == [0, 1]
        assert not cosim.finished()
        cosim.run(until=3.5)
        assert consumer.got == [0, 1, 2]
        cosim.run()
        assert consumer.got == [0, 1, 2, 3, 4]
        assert cosim.finished()

    def test_max_rounds_limits_work(self):
        cosim, consumer = simple_pair()
        cosim.run(max_rounds=1)
        assert len(consumer.got) <= 5
        cosim.run()
        assert consumer.got == [0, 1, 2, 3, 4]

    def test_run_twice_after_finish_is_harmless(self):
        cosim, consumer = simple_pair()
        cosim.run()
        events = cosim.run()
        assert events == 0
        assert consumer.got == [0, 1, 2, 3, 4]


class TestConfigurationErrors:
    def test_duplicate_node(self):
        cosim = CoSimulation()
        cosim.add_node("n")
        with pytest.raises(ConfigurationError):
            cosim.add_node("n")

    def test_duplicate_subsystem(self):
        cosim = CoSimulation()
        node = cosim.add_node("n")
        cosim.add_subsystem(node, "ss")
        with pytest.raises(ConfigurationError):
            cosim.add_subsystem(node, "ss")

    def test_connect_requires_attached_subsystems(self):
        from repro.core import Subsystem
        cosim = CoSimulation()
        with pytest.raises(ConfigurationError):
            cosim.connect(Subsystem("x"), Subsystem("y"))

    def test_unknown_lookups(self):
        cosim = CoSimulation()
        with pytest.raises(ConfigurationError):
            cosim.node("ghost")
        with pytest.raises(ConfigurationError):
            cosim.subsystem("ghost")
        with pytest.raises(ConfigurationError):
            cosim.component("ghost")
        with pytest.raises(ConfigurationError):
            cosim.set_runlevel("ghost", "word")

    def test_channel_rejects_third_endpoint(self):
        cosim = CoSimulation()
        ss_a = cosim.add_subsystem(cosim.add_node("na"), "sa")
        ss_b = cosim.add_subsystem(cosim.add_node("nb"), "sb")
        ss_c = cosim.add_subsystem(cosim.add_node("nc"), "sc")
        channel = cosim.connect(ss_a, ss_b)
        with pytest.raises(ConfigurationError):
            channel.attach(ss_c, peer_subsystem="sa", peer_node="na")


class TestPeriodicSnapshots:
    def test_snapshots_taken_on_cadence(self):
        cosim, consumer = simple_pair()
        cosim.snapshot_interval = 2.0
        cosim.run()
        assert len(cosim.registry.completed()) >= 2

    def test_manual_snapshot_anytime(self):
        cosim, consumer = simple_pair()
        cosim.run(until=2.5)
        snap_id = cosim.snapshot()
        assert cosim.registry.snapshots[snap_id].complete
        cosim.run()
        assert consumer.got == [0, 1, 2, 3, 4]


class TestGlobalSwitchpoints:
    def test_condition_across_subsystems(self):
        """A switchpoint whose condition reads one subsystem's component
        and whose assignment targets another's — the paper's cross-host
        conjunct case."""
        cosim = CoSimulation()
        ss_a = cosim.add_subsystem(cosim.add_node("na"), "sa")
        ss_b = cosim.add_subsystem(cosim.add_node("nb"), "sb")

        def sender(comp):
            for __ in range(6):
                yield WaitUntil(comp.local_time + 1.0)
                yield Transfer("link", b"pay")

        def receiver(comp):
            while True:
                yield ReceiveTransfer("link")

        tx = FunctionComponent("tx", sender)
        tx.add_interface(Interface("link", packet_protocol(),
                                   level="word", out_port="o"))
        rx = FunctionComponent("rx", receiver)
        rx.add_interface(Interface("link", packet_protocol(),
                                   level="word", in_port="i"))
        ss_a.add(tx)
        ss_b.add(rx)
        channel = cosim.connect(ss_a, ss_b)
        channel.split_net(ss_a.wire("l", tx.port("o")),
                          ss_b.wire("l", rx.port("i")))
        cosim.add_switchpoint(
            "when tx.localtime >= 3.0 and rx.localtime >= 2.0: "
            "tx.link -> packet, rx.link -> packet")
        cosim.run()
        assert tx.interface("link").level == "packet"
        assert rx.interface("link").level == "packet"
        assert len(cosim.switchpoints.history) == 1

    def test_slider_across_subsystems(self):
        cosim, consumer = simple_pair()
        # sliders resolve component targets across every subsystem
        producer = cosim.component("p")
        levels = []
        slider = cosim.slider([], ["low", "high"])
        assert slider.level == "low"


class TestStats:
    def test_global_time_and_counters(self):
        cosim, consumer = simple_pair()
        cosim.run()
        assert cosim.global_time() >= 5.0
        assert cosim.rounds > 0
        assert cosim.cpu_seconds > 0
        assert cosim.safe_time_requests() > 0
