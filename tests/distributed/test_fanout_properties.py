"""Property-based equivalence on fan-out/fan-in (star) topologies.

The pipeline property test covers chains; this one covers the other shape
the simple-cycle topology rule allows: a hub fanning work out to several
leaf subsystems and collecting replies.  Placement (which workers go
remote) must never change the collected results.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Advance,
    FunctionComponent,
    PortDirection,
    ProcessComponent,
    Receive,
    Send,
)
from repro.distributed import ChannelMode, CoSimulation, Design, deploy


class Hub(ProcessComponent):
    """Scatters jobs round-robin, gathers every reply."""

    def __init__(self, name, jobs, worker_count):
        super().__init__(name)
        self.jobs = list(jobs)
        self.worker_count = worker_count
        self.replies = []
        for index in range(worker_count):
            self.add_port(f"to{index}", PortDirection.OUT)
            self.add_port(f"from{index}", PortDirection.IN)

    def run(self):
        for index, job in enumerate(self.jobs):
            worker = index % self.worker_count
            yield Advance(1.0)
            yield Send(f"to{worker}", job)
            t, reply = yield Receive(f"from{worker}")
            self.replies.append((round(t, 9), reply))


class Worker(ProcessComponent):
    def __init__(self, name, delay):
        super().__init__(name)
        self.delay = delay
        self.add_port("in", PortDirection.IN)
        self.add_port("out", PortDirection.OUT)

    def run(self):
        while True:
            t, job = yield Receive("in")
            yield Advance(self.delay)
            yield Send("out", (job * 7 + len(self.name)) % 997)


def build(jobs, delays):
    design = Design("star")
    worker_count = len(delays)
    design.add(Hub("hub", jobs, worker_count))
    for index, delay in enumerate(delays):
        name = f"w{index}"
        design.add(Worker(name, delay))
        design.connect(f"out{index}", ("hub", f"to{index}"), (name, "in"))
        design.connect(f"back{index}", (name, "out"),
                       ("hub", f"from{index}"))
    return design


def run_placement(jobs, delays, remote_workers, mode):
    design = build(jobs, delays)
    assignment = {"hub": "center"}
    for index in range(len(delays)):
        assignment[f"w{index}"] = (f"leaf{index}"
                                   if index in remote_workers else "center")
    cosim = CoSimulation(
        snapshot_interval=4.0 if mode is ChannelMode.OPTIMISTIC else None)
    deploy(design, assignment, cosim, mode=mode)
    cosim.run()
    return cosim.component("hub").replies


@st.composite
def star_case(draw):
    jobs = draw(st.lists(st.integers(0, 500), min_size=1, max_size=8))
    delays = draw(st.lists(st.sampled_from([0.0, 0.25, 0.5]),
                           min_size=1, max_size=3))
    remote = draw(st.sets(st.integers(0, len(delays) - 1)))
    return jobs, delays, remote


class TestStarEquivalence:
    @given(star_case())
    @settings(max_examples=20, deadline=None)
    def test_remote_workers_change_nothing(self, case):
        jobs, delays, remote = case
        reference = run_placement(jobs, delays, set(),
                                  ChannelMode.CONSERVATIVE)
        split = run_placement(jobs, delays, remote,
                              ChannelMode.CONSERVATIVE)
        assert split == reference

    @given(star_case())
    @settings(max_examples=10, deadline=None)
    def test_optimistic_star_matches(self, case):
        jobs, delays, remote = case
        reference = run_placement(jobs, delays, set(),
                                  ChannelMode.CONSERVATIVE)
        split = run_placement(jobs, delays, remote, ChannelMode.OPTIMISTIC)
        assert split == reference

    def test_all_leaves_remote_topology_is_legal(self):
        replies = run_placement([1, 2, 3, 4], [0.25, 0.5], {0, 1},
                                ChannelMode.CONSERVATIVE)
        assert len(replies) == 4
