"""Migration and failover chaos: a scheduled crash under
``failure_policy="migrate"`` and an explicit live migration must both
finish with simulation state bit-identical to a fault-free same-seed
run — across both transports, batching on and off.  Also unit-tests the
portable-image plumbing those moves ride on."""

import pickle

import pytest

from repro.bench.workloads import compute_star_multiprocess
from repro.core import (
    Advance,
    PortDirection,
    ProcessComponent,
    Receive,
    Send,
    Simulator,
)
from repro.core.checkpoint import capture
from repro.core.errors import ConfigurationError, MigrationError
from repro.distributed.migration import (
    NodeArchive,
    PortableImage,
    decode_image,
    encode_image,
    resent_counts,
)
from repro.faults import FaultPlan, NodeCrash
from repro.observability.spans import causal_chains
from repro.transport.message import Message, MessageKind

#: Full deployment matrix the bit-identity guarantee is claimed over.
MATRIX = [("tcp", False), ("tcp", True), ("shm", False), ("shm", True)]


def star(**kwargs):
    return compute_star_multiprocess(2, 6, words=50,
                                     failure_policy="migrate", **kwargs)


def progress_rows(report):
    return sorted((row["name"], row["time"], row["dispatched"])
                  for row in report.subsystems)


# ----------------------------------------------------------------------
# crash -> supervised failover
# ----------------------------------------------------------------------

class TestFailoverBitIdentity:
    @pytest.mark.parametrize("transport,batching", MATRIX)
    def test_crash_failover_matches_fault_free_run(self, transport,
                                                   batching):
        """Kill a worker mid-run; the supervisor must elect a fresh pool
        worker, restore from the last global snapshot and finish with
        the exact per-subsystem (time, dispatched) rows of an unfailed
        same-seed run."""
        ref = star(transport=transport, batching=batching)
        dispatched_ref = ref.run(timeout=120.0)
        rows_ref = progress_rows(ref.report())

        crash = star(transport=transport, batching=batching,
                     fault_plan=FaultPlan(
                         seed=3, crashes=[NodeCrash("n-w0", at_time=2.0)]))
        dispatched_crash = crash.run(timeout=120.0)
        report = crash.report()

        assert progress_rows(report) == rows_ref
        assert dispatched_crash == dispatched_ref
        assert [m["kind"] for m in report.migrations] == ["failover"]
        record = report.migrations[0]
        assert record["node"] == "n-w0"
        assert record["reason"] == "scheduled-crash"
        assert record["epoch"] >= 1
        assert record["snapshot_bytes"] > 0

    def test_failover_replaces_the_worker_process(self):
        """The placement log must show the crashed node losing its
        worker and being adopted by a different process."""
        crash = star(fault_plan=FaultPlan(
            seed=3, crashes=[NodeCrash("n-w0", at_time=2.0)]))
        crash.run(timeout=120.0)
        events = {}
        for entry in crash.placement_log:
            events.setdefault((entry["node"], entry["event"]),
                              entry["worker"])
        assert ("n-w0", "lost") in events
        assert ("n-w0", "adopted") in events
        assert events[("n-w0", "adopted")] != events[("n-w0", "assigned")]
        # Survivors keep their original placement.
        assert ("n-hub", "lost") not in events

    def test_detector_suspicions_reported(self):
        """The heartbeat detector's verdicts surface as a report gauge
        whether or not anything died."""
        quiet = star()
        quiet.run(timeout=120.0)
        assert quiet.report().gauges.get("mp.suspicions") == 0


# ----------------------------------------------------------------------
# explicit live migration
# ----------------------------------------------------------------------

class TestLiveMigration:
    @pytest.mark.parametrize("transport", ["tcp", "shm"])
    def test_migrate_mid_run_is_lossless(self, transport):
        """migrate_at() must re-splice every channel without dropping or
        duplicating in-flight messages: progress rows stay bit-identical
        and the causal trace graph has no orphan receives (a dropped or
        doubled message breaks a span chain)."""
        ref = star(transport=transport)
        ref.run(timeout=120.0)
        rows_ref = progress_rows(ref.report())

        moved = star(transport=transport)
        moved.migrate_at("n-w1", 2.0)
        moved.run(timeout=120.0)
        report = moved.report()

        assert progress_rows(report) == rows_ref
        assert [m["kind"] for m in report.migrations] == ["migrate"]
        assert report.migrations[0]["reason"] == "requested"
        chains = causal_chains(report.trace_records)
        assert not chains["orphan_receives"], chains["orphan_receives"][:3]
        assert not chains["broken_parents"], chains["broken_parents"][:3]
        placements = {}
        for entry in moved.placement_log:
            placements.setdefault((entry["node"], entry["event"]),
                                  entry["worker"])
        assert ("n-w1", "released") in placements
        assert ("n-w1", "adopted") in placements
        # A migration must land on a genuinely different process.
        assert placements[("n-w1", "adopted")] != \
            placements[("n-w1", "assigned")]

    def test_migrate_requires_migrate_policy(self):
        plain = compute_star_multiprocess(2, 3, words=20)
        with pytest.raises(ConfigurationError):
            plain.migrate("n-w0")

    def test_migrate_unknown_node_rejected(self):
        cosim = star()
        with pytest.raises(ConfigurationError):
            cosim.migrate("n-missing")


# ----------------------------------------------------------------------
# portable checkpoint images (unit level)
# ----------------------------------------------------------------------

class _Ticker(ProcessComponent):
    def __init__(self, name, count=10):
        super().__init__(name)
        self.count = count
        self.add_port("out", PortDirection.OUT)

    def run(self):
        for index in range(self.count):
            yield Advance(1.0)
            yield Send("out", index)


class _Accumulator(ProcessComponent):
    def __init__(self, name):
        super().__init__(name)
        self.seen = []
        self.add_port("in", PortDirection.IN)

    def run(self):
        while True:
            t, value = yield Receive("in")
            self.seen.append((t, value))


def build_sim():
    sim = Simulator()
    ticker = sim.add(_Ticker("ticker"))
    acc = sim.add(_Accumulator("acc"))
    sim.wire("n", ticker.port("out"), acc.port("in"))
    return sim, acc


class TestPortableImages:
    def test_pickle_round_trip_resumes_identically(self):
        """encode -> pickle -> decode into a *freshly built* subsystem
        (the adopting worker's situation) must resume to the same final
        state as the original."""
        sim, acc = build_sim()
        sim.run(until=3.0)
        portable = encode_image(sim.subsystem,
                                capture(sim.subsystem, 1, "cut"))
        clone = pickle.loads(pickle.dumps(portable))
        assert clone.storage_bytes() > 0
        assert clone.time == 3.0

        fresh, fresh_acc = build_sim()
        decode_image(fresh.subsystem, clone)
        fresh.run()
        sim.run()
        assert fresh_acc.seen == acc.seen
        assert fresh.now == sim.now

    def test_image_for_wrong_subsystem_rejected(self):
        sim, __ = build_sim()
        sim.run(until=2.0)
        portable = encode_image(sim.subsystem,
                                capture(sim.subsystem, 1, "cut"))
        portable.subsystem = "someone-else"
        with pytest.raises(MigrationError):
            decode_image(sim.subsystem, portable)

    def test_resent_counts_key_by_channel_and_destination(self):
        """Recorded in-flight messages pre-seed the ``forwarded`` ledger
        of the endpoint that will re-deliver them: counts must be keyed
        by (channel, destination node)."""
        def signal(channel, dst):
            return Message(kind=MessageKind.SIGNAL, src="n-a", dst=dst,
                           channel=channel, time=1.0, payload="x")

        image_a = PortableImage(subsystem="a", checkpoint_id=1, label=None,
                                time=1.0, started=True, dispatched=0,
                                stalls=0,
                                recorded={"ch-1": [signal("ch-1", "n-b"),
                                                   signal("ch-1", "n-b")]})
        image_b = PortableImage(subsystem="b", checkpoint_id=1, label=None,
                                time=1.0, started=True, dispatched=0,
                                stalls=0,
                                recorded={"ch-2": [signal("ch-2", "n-c")]})
        archives = [NodeArchive(node="n-b", snapshot_id="s",
                                images={"a": image_a}),
                    NodeArchive(node="n-c", snapshot_id="s",
                                images={"b": image_b})]
        assert resent_counts(archives) == {("ch-1", "n-b"): 2,
                                           ("ch-2", "n-c"): 1}
