"""Process-per-node deployment: bootstrap specs, control plane, merged
reports, and same-seed chaos equivalence with the cooperative executor."""

import pickle

import pytest

from repro.bench.workloads import (
    compute_star,
    compute_star_multiprocess,
    make_compute_hub,
    make_compute_worker,
)
from repro.core.errors import ConfigurationError, NodeFailure, TopologyError
from repro.distributed import MultiprocessCoSimulation, WorkerPool
from repro.distributed.multiprocess import register_factory, resolve_factory
from repro.faults import FaultPlan, LinkFaults, NodeCrash, RetryPolicy

#: Rates chosen (with seed 0) to fire every fault kind at least once on
#: the small star: drops, duplicates (and their suppression), delays,
#: reorders and retries.
CHAOS = dict(seed=0, default=LinkFaults(drop=0.12, duplicate=0.15,
                                        delay=0.12, delay_ticks=2,
                                        reorder=0.1))
FAST_RETRY = dict(max_attempts=8, base_delay=0.0005, max_delay=0.002,
                  jitter=0.0)


def progress_rows(report):
    return sorted((row["name"], row["time"], row["dispatched"])
                  for row in report.subsystems)


def make_exploding_worker(name, *, index, rounds, words, period=1.0):
    """A spoke whose behaviour raises mid-run — importable by dotted path
    so a spawned worker builds it cleanly, then blows up on first use."""
    from repro.core.component import FunctionComponent
    from repro.core.process import Receive
    from repro.core.subsystem import Subsystem

    def behave(comp):
        yield Receive("go")
        raise RuntimeError(f"{name} exploded mid-run")

    worker = FunctionComponent("worker", behave,
                               ports={"go": "in", "done": "out"})
    subsystem = Subsystem(name)
    subsystem.add(worker)
    subsystem.wire(f"go{index}", worker.port("go"))
    subsystem.wire(f"done{index}", worker.port("done"))
    return subsystem


# ----------------------------------------------------------------------
# specs and factories
# ----------------------------------------------------------------------

class TestSpecs:
    def test_resolve_factory_dotted_and_colon_paths(self):
        by_colon = resolve_factory("repro.bench.workloads:make_compute_hub")
        by_dot = resolve_factory("repro.bench.workloads.make_compute_hub")
        assert by_colon is make_compute_hub
        assert by_dot is make_compute_hub

    def test_registered_name_wins(self):
        register_factory("test-hub", make_compute_hub)
        assert resolve_factory("test-hub") is make_compute_hub

    @pytest.mark.parametrize("ref", ["", "nodots", "repro.nosuchmodule:x",
                                     "repro.bench.workloads:nosuchattr"])
    def test_bad_references_raise(self, ref):
        with pytest.raises(ConfigurationError):
            resolve_factory(ref)

    def test_worker_spec_pickles_and_filters_crashes(self):
        plan = FaultPlan(seed=7, crashes=[NodeCrash("n-hub", 5.0),
                                          NodeCrash("n-w0", 9.0)])
        cosim = compute_star_multiprocess(2, 3, words=10, fault_plan=plan)
        spec = cosim.worker_spec("n-w0")
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.node == "n-w0"
        assert [s.name for s in clone.subsystems] == ["w0"]
        # Same seed (decisions are keyed by it), own crashes only.
        assert clone.fault_plan.seed == 7
        assert [c.node for c in clone.fault_plan.crashes] == ["n-w0"]
        # The spec builds a real subsystem in-process too.
        built = clone.subsystems[0].build()
        assert built.name == "w0"
        assert set(built.nets) == {"go0", "done0"}

    def test_duplicate_names_rejected(self):
        cosim = MultiprocessCoSimulation()
        cosim.add_node("n0")
        cosim.add_subsystem("n0", "ss", "repro.bench.workloads:make_compute_hub")
        with pytest.raises(ConfigurationError):
            cosim.add_node("n0")
        with pytest.raises(ConfigurationError):
            cosim.add_subsystem("n0", "ss",
                                "repro.bench.workloads:make_compute_hub")
        with pytest.raises(ConfigurationError):
            cosim.add_subsystem("missing", "other",
                                "repro.bench.workloads:make_compute_hub")

    def test_cyclic_channel_graph_rejected_before_spawning(self):
        cosim = MultiprocessCoSimulation()
        for index in range(3):
            cosim.add_node(f"n{index}")
            cosim.add_subsystem(f"n{index}", f"ss{index}", "unused-factory")
        cosim.connect("ss0", "ss1")
        cosim.connect("ss1", "ss2")
        cosim.connect("ss2", "ss0")
        with pytest.raises(TopologyError, match="cycle"):
            cosim.run(until=1.0)


# ----------------------------------------------------------------------
# execution and merged reporting
# ----------------------------------------------------------------------

class TestExecution:
    def test_matches_cooperative_run_exactly(self):
        reference = compute_star(2, 4, words=50, executor="cosim")
        ref_events = reference.run(until=100.0)
        ref_report = reference.report()

        cosim = compute_star_multiprocess(2, 4, words=50)
        events = cosim.run(until=100.0, timeout=60.0)
        report = cosim.report()

        assert events == ref_events
        assert progress_rows(report) == progress_rows(ref_report)
        assert cosim.global_time() == min(
            row["time"] for row in ref_report.subsystems)

    def test_report_merges_worker_telemetry(self):
        cosim = compute_star_multiprocess(2, 3, words=50)
        events = cosim.run(until=100.0, timeout=60.0)
        report = cosim.report(title="merged")

        assert report.title == "merged"
        assert [row["name"] for row in report.subsystems] == \
            ["hub", "w0", "w1"]
        # One directed link row per (src, dst) pair, merged across the
        # three per-process transports.
        links = {(row["src"], row["dst"]) for row in report.links}
        assert links == {("n-hub", "n-w0"), ("n-hub", "n-w1"),
                         ("n-w0", "n-hub"), ("n-w1", "n-hub")}
        # Counters sum across processes: every dispatched event was
        # counted by exactly one worker's telemetry.
        assert report.counters["scheduler.dispatched"] == events
        assert report.counters["transport.frames_sent"] == \
            sum(row["frames"] for row in report.links)
        # The batched fast path is on by default and its histogram
        # survives the merge.
        assert report.histograms["transport.batch_size"]["count"] > 0
        assert report.trace_counts.get("dispatch") == events

    def test_report_before_run_raises(self):
        cosim = compute_star_multiprocess(2, 3, words=10)
        with pytest.raises(Exception, match="run"):
            cosim.report()

    def test_empty_simulation_is_a_noop(self):
        assert MultiprocessCoSimulation().run(until=10.0) == 0


# ----------------------------------------------------------------------
# chaos and failure surfacing
# ----------------------------------------------------------------------

class TestChaos:
    def test_same_seed_chaos_matches_cooperative(self):
        """The satellite acceptance check: identical drop/duplicate/delay
        counters and final virtual times for the same plan seed."""
        reference = compute_star(2, 6, words=50, executor="cosim",
                                 fault_plan=FaultPlan(**CHAOS),
                                 retry_policy=RetryPolicy(**FAST_RETRY))
        ref_events = reference.run(until=100.0)
        ref_report = reference.report()
        # The seed really does exercise the interesting paths.
        for kind in ("fault.drops", "fault.duplicates",
                     "fault.duplicates_suppressed", "fault.delays",
                     "fault.reorders", "retry.attempts"):
            assert ref_report.faults.get(kind, 0) > 0, kind

        cosim = compute_star_multiprocess(
            2, 6, words=50, fault_plan=FaultPlan(**CHAOS),
            retry_policy=RetryPolicy(**FAST_RETRY))
        events = cosim.run(until=100.0, timeout=90.0)
        report = cosim.report()

        assert events == ref_events
        assert progress_rows(report) == progress_rows(ref_report)
        assert report.faults == ref_report.faults

    def test_scheduled_crash_surfaces_as_node_failure(self):
        plan = FaultPlan(seed=3, crashes=[NodeCrash("n-w0", at_time=2.0)])
        cosim = compute_star_multiprocess(2, 6, words=50, fault_plan=plan)
        with pytest.raises(NodeFailure) as excinfo:
            cosim.run(until=100.0, timeout=60.0)
        assert excinfo.value.node == "n-w0"

    def test_broken_factory_surfaces_as_node_failure(self):
        cosim = MultiprocessCoSimulation()
        cosim.add_node("n0")
        cosim.add_subsystem("n0", "ss0", "repro.bench.workloads:make_compute_hub",
                            workers=1, rounds=1)
        cosim.add_node("n1")
        cosim.add_subsystem("n1", "ss1", "repro.bench.workloads:nosuchattr")
        cosim.connect("ss0", "ss1")
        with pytest.raises(NodeFailure) as excinfo:
            cosim.run(until=10.0, timeout=30.0)
        assert excinfo.value.node == "n1"
        assert "nosuchattr" in str(excinfo.value)

    def test_worker_exception_mid_run_surfaces_its_message(self):
        """The regression: the dead-worker probe passed ``monotonic()``
        as the deadline, so a queued parting error could be missed and
        reported as a generic unresponsive/died message.  The actual
        exception text must reach the coordinator."""
        cosim = MultiprocessCoSimulation(
            retry_policy=RetryPolicy(**FAST_RETRY))
        cosim.add_node("n-hub")
        cosim.add_subsystem("n-hub", "hub",
                            "repro.bench.workloads:make_compute_hub",
                            workers=1, rounds=2)
        cosim.add_node("n-w0")
        cosim.add_subsystem(
            "n-w0", "w0",
            "tests.distributed.test_multiprocess:make_exploding_worker",
            index=0, rounds=2, words=10)
        cosim.connect("hub", "w0", delay=0.25, nets=("go0", "done0"))
        with pytest.raises(NodeFailure) as excinfo:
            cosim.run(until=100.0, timeout=30.0)
        assert excinfo.value.node == "n-w0"
        assert "w0 exploded mid-run" in str(excinfo.value)
        cosim.close()


# ----------------------------------------------------------------------
# the shared-memory data plane
# ----------------------------------------------------------------------

class TestSharedMemoryBackend:
    def test_shm_matches_cooperative_run_exactly(self):
        """The tentpole acceptance check: the shm-backed run's report is
        indistinguishable from the cooperative executor's on the
        deterministic fields (events, per-subsystem progress, dispatch
        traces, faults)."""
        reference = compute_star(2, 4, words=50, executor="cosim")
        ref_events = reference.run(until=100.0)
        ref_report = reference.report()

        cosim = compute_star_multiprocess(2, 4, words=50, transport="shm")
        events = cosim.run(until=100.0, timeout=60.0)
        report = cosim.report()
        cosim.close()

        assert events == ref_events
        assert progress_rows(report) == progress_rows(ref_report)
        assert report.counters["scheduler.dispatched"] == \
            ref_report.counters["scheduler.dispatched"]
        assert report.trace_counts.get("dispatch") == \
            ref_report.trace_counts.get("dispatch")
        assert report.faults == ref_report.faults == {}
        # The data plane really was shared memory, not loopback TCP.
        assert report.counters["transport.shm_frames"] > 0

    def test_shm_same_seed_chaos_matches_cooperative(self):
        reference = compute_star(2, 6, words=50, executor="cosim",
                                 fault_plan=FaultPlan(**CHAOS),
                                 retry_policy=RetryPolicy(**FAST_RETRY))
        ref_events = reference.run(until=100.0)
        ref_report = reference.report()

        cosim = compute_star_multiprocess(
            2, 6, words=50, transport="shm", fault_plan=FaultPlan(**CHAOS),
            retry_policy=RetryPolicy(**FAST_RETRY))
        events = cosim.run(until=100.0, timeout=90.0)
        report = cosim.report()
        cosim.close()

        assert events == ref_events
        assert progress_rows(report) == progress_rows(ref_report)
        assert report.faults == ref_report.faults

    def test_tiny_rings_spill_oversized_frames_over_tcp(self):
        """With rings too small for most frames, the TCP fallback must
        carry them without changing the run's result."""
        reference = compute_star(2, 3, words=50, executor="cosim")
        ref_events = reference.run(until=100.0)

        # 64 bytes: far below a 50-word batch frame even in the compact
        # binary codec, so the TCP fallback is genuinely exercised.
        cosim = compute_star_multiprocess(2, 3, words=50, transport="shm",
                                          ring_capacity=64)
        events = cosim.run(until=100.0, timeout=60.0)
        report = cosim.report()
        cosim.close()

        assert events == ref_events
        assert report.counters.get("transport.shm_spills", 0) > 0

    def test_unknown_transport_rejected(self):
        with pytest.raises(ConfigurationError, match="transport"):
            MultiprocessCoSimulation(transport="carrier-pigeon")


# ----------------------------------------------------------------------
# the warm worker pool
# ----------------------------------------------------------------------

class TestWarmPool:
    def test_repeat_runs_reuse_the_same_processes(self):
        """Consecutive runs on one executor must not respawn: the pool
        spawns once per node, then reuses."""
        cosim = compute_star_multiprocess(2, 3, words=20, transport="shm")
        first = cosim.run(until=100.0, timeout=60.0)
        second = cosim.run(until=100.0, timeout=60.0)
        pool = cosim._own_pool
        assert first == second
        assert pool.spawned == 3
        assert pool.idle_count() == 3
        cosim.close()
        assert pool.idle_count() == 0

    def test_shared_pool_across_executors(self):
        with WorkerPool() as pool:
            for __ in range(2):
                cosim = compute_star_multiprocess(2, 3, words=20, pool=pool)
                cosim.run(until=100.0, timeout=60.0)
            assert pool.spawned == 3
            assert pool.idle_count() == 3

    def test_closed_pool_rejects_acquire(self):
        pool = WorkerPool()
        pool.close()
        with pytest.raises(ConfigurationError):
            pool.acquire(1)

    def test_unhealthy_release_respawns_replacement(self):
        """A worker that died mid-job must not shrink the pool: an
        unhealthy release spawns a replacement into the idle set, so
        capacity stays constant across failovers (regression — the pool
        used to silently lose a slot on every worker death)."""
        with WorkerPool() as pool:
            first, second = pool.acquire(2)
            assert pool.spawned == 2
            first.proc.terminate()
            first.proc.join(timeout=5.0)
            pool.release(first, healthy=False)
            pool.release(second)
            assert pool.spawned == 3
            assert pool.idle_count() == 2
            assert all(worker.is_alive() for worker in pool.acquire(2))
