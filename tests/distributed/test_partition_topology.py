"""Net splitting by graph cut, partition suggestion, topology rules."""

import pytest

from repro.core import (
    Advance,
    ConfigurationError,
    FunctionComponent,
    PortDirection,
    Receive,
    Send,
    TopologyError,
)
from repro.distributed import (
    ChannelMode,
    CoSimulation,
    Design,
    deploy,
    suggest_partition,
)
from repro.distributed import topology


def _source(values):
    def behave(comp):
        for v in values:
            yield Advance(1.0)
            yield Send("out", v)
    return behave


def _sink(count):
    def behave(comp):
        comp.got = []
        for __ in range(count):
            t, v = yield Receive("in")
            comp.got.append((t, v))
    return behave


def simple_design(values=(1, 2, 3)):
    design = Design("d")
    design.add(FunctionComponent("src", _source(list(values)),
                                 ports={"out": "out"}))
    design.add(FunctionComponent("dst", _sink(len(values)),
                                 ports={"in": "in"}))
    design.connect("wire", ("src", "out"), ("dst", "in"))
    return design


class TestDesign:
    def test_duplicate_component_rejected(self):
        design = simple_design()
        with pytest.raises(ConfigurationError):
            design.add(FunctionComponent("src", _source([])))

    def test_connect_unknown_component(self):
        design = simple_design()
        with pytest.raises(ConfigurationError):
            design.connect("w2", ("ghost", "out"))

    def test_connect_unknown_port(self):
        design = simple_design()
        with pytest.raises(ConfigurationError):
            design.connect("w2", ("src", "nope"))

    def test_cut_nets(self):
        design = simple_design()
        assert design.cut_nets({"src": "a", "dst": "a"}) == []
        assert design.cut_nets({"src": "a", "dst": "b"}) == ["wire"]

    def test_component_graph_weights(self):
        design = simple_design()
        graph = design.component_graph(weights={"wire": 5.0})
        assert graph["src"]["dst"]["weight"] == 5.0


class TestDeploy:
    def test_local_placement_runs(self):
        design = simple_design()
        cosim = CoSimulation()
        deploy(design, {"src": "only", "dst": "only"}, cosim)
        cosim.run()
        assert cosim.component("dst").got == [(1.0, 1), (2.0, 2), (3.0, 3)]
        assert not cosim.channels    # nothing split

    def test_split_placement_runs_identically(self):
        design = simple_design()
        cosim = CoSimulation()
        deployment = deploy(design, {"src": "a", "dst": "b"}, cosim)
        assert deployment.splits == {"wire": ["a", "b"]}
        cosim.run()
        assert cosim.component("dst").got == [(1.0, 1), (2.0, 2), (3.0, 3)]

    def test_missing_assignment_rejected(self):
        design = simple_design()
        with pytest.raises(ConfigurationError):
            deploy(design, {"src": "a"}, CoSimulation())

    def test_hidden_ports_introduced_only_on_split(self):
        design = simple_design()
        cosim = CoSimulation()
        deploy(design, {"src": "a", "dst": "b"}, cosim)
        ss_a = cosim.subsystem("a")
        hidden = [p for net in ss_a.nets.values() for p in net.ports
                  if p.hidden]
        assert len(hidden) == 1

    def test_three_way_net_star_relay(self):
        """A net spanning three subsystems relays through the root without
        duplicate deliveries."""
        design = Design()
        design.add(FunctionComponent("src", _source([42]),
                                     ports={"out": "out"}))
        design.add(FunctionComponent("d1", _sink(1), ports={"in": "in"}))
        design.add(FunctionComponent("d2", _sink(1), ports={"in": "in"}))
        design.connect("bus", ("src", "out"), ("d1", "in"), ("d2", "in"))
        cosim = CoSimulation()
        deployment = deploy(design, {"src": "a", "d1": "b", "d2": "c"}, cosim)
        assert deployment.splits["bus"] == ["a", "b", "c"]
        cosim.run()
        assert cosim.component("d1").got == [(1.0, 42)]
        assert cosim.component("d2").got == [(1.0, 42)]

    def test_no_pass_through_subsystems(self):
        """The global view: a net between a and c must not touch b."""
        design = Design()
        design.add(FunctionComponent("src", _source([1]),
                                     ports={"out": "out"}))
        design.add(FunctionComponent("dst", _sink(1), ports={"in": "in"}))
        design.add(FunctionComponent("bystander", _source([]),
                                     ports={"out": "out"}))
        design.connect("wire", ("src", "out"), ("dst", "in"))
        cosim = CoSimulation()
        deploy(design, {"src": "a", "bystander": "b", "dst": "c"}, cosim)
        assert "wire" not in cosim.subsystem("b").nets

    def test_placement_maps_subsystems_to_nodes(self):
        design = simple_design()
        cosim = CoSimulation()
        deploy(design, {"src": "a", "dst": "b"}, cosim,
               placement={"a": "seattle", "b": "boston"})
        assert set(cosim.nodes) == {"seattle", "boston"}


class TestSuggestPartition:
    def test_bisection_balances_and_separates(self):
        design = Design()
        # two tightly coupled clusters joined by one thin wire
        for cluster, names in (("l", ["l0", "l1", "l2"]),
                               ("r", ["r0", "r1", "r2"])):
            for name in names:
                comp = FunctionComponent(name, _source([]))
                comp.add_port("p", PortDirection.INOUT)
                comp.add_port("q", PortDirection.INOUT)
                design.add(comp)
        design.connect("lc1", ("l0", "p"), ("l1", "p"))
        design.connect("lc2", ("l1", "q"), ("l2", "p"))
        design.connect("lc3", ("l0", "q"), ("l2", "q"))
        design.connect("rc1", ("r0", "p"), ("r1", "p"))
        design.connect("rc2", ("r1", "q"), ("r2", "p"))
        design.connect("rc3", ("r0", "q"), ("r2", "q"))
        design.connect("thin", ("l0", "p"), ("r0", "p"))
        assignment = suggest_partition(design, seed=1)
        homes = {assignment[n] for n in ["l0", "l1", "l2"]}
        assert len(homes) == 1
        other = {assignment[n] for n in ["r0", "r1", "r2"]}
        assert len(other) == 1
        assert homes != other

    def test_single_component(self):
        design = Design()
        design.add(FunctionComponent("only", _source([])))
        assert suggest_partition(design) == {"only": "ss0"}


class TestTopologyRules:
    def _chain(self, edges, directed_pairs):
        """Build a cosim with given subsystem edges; directed_pairs maps
        (a, b) -> True if traffic flows a->b only."""
        cosim = CoSimulation()
        subsystems = {}

        def get_ss(name):
            if name not in subsystems:
                subsystems[name] = cosim.add_subsystem(
                    cosim.add_node(f"n{name}"), name)
            return subsystems[name]

        made = []
        for a, b in edges:
            ss_a, ss_b = get_ss(a), get_ss(b)
            src = FunctionComponent(f"src-{a}{b}", _source([]),
                                    ports={"out": "out"})
            dst = FunctionComponent(f"dst-{a}{b}", _sink(0),
                                    ports={"in": "in"})
            ss_a.add(src)
            ss_b.add(dst)
            channel = cosim.connect(ss_a, ss_b)
            channel.split_net(ss_a.wire(f"w{a}{b}", src.port("out")),
                              ss_b.wire(f"w{a}{b}", dst.port("in")))
            made.append(channel)
        return cosim

    def test_pair_is_legal(self):
        cosim = self._chain([("a", "b"), ("b", "a")], {})
        cosim.validate_topology()   # no raise

    def test_three_cycle_rejected(self):
        cosim = self._chain([("a", "b"), ("b", "c"), ("c", "a")], {})
        with pytest.raises(TopologyError):
            cosim.validate_topology()

    def test_tree_is_legal(self):
        cosim = self._chain([("a", "b"), ("a", "c"), ("c", "d")], {})
        graph = cosim.validate_topology()
        assert set(graph.nodes) == {"a", "b", "c", "d"}

    def test_run_validates_topology(self):
        cosim = self._chain([("a", "b"), ("b", "c"), ("c", "a")], {})
        with pytest.raises(TopologyError):
            cosim.run()
