"""Chandy-Lamport snapshots and optimistic channel recovery."""

import pytest

from repro.core import Advance, CheckpointError, FunctionComponent, Receive, Send
from repro.distributed import ChannelMode, CoSimulation, StragglerError


def producer(values, period=1.0):
    def behave(comp):
        for value in values:
            yield Advance(period)
            yield Send("out", value)
    return behave


def collector(sink, count):
    """Collects into *component state* (rolled back correctly on restore)
    and mirrors the final result into ``sink`` when done."""
    def behave(comp):
        comp.collected = []
        for __ in range(count):
            t, v = yield Receive("in")
            comp.collected.append((t, v))
        sink.extend(comp.collected)
    return behave


def two_subsystem_system(values, sink, *, mode=ChannelMode.CONSERVATIVE,
                         snapshot_interval=None, consumer_work=None,
                         producer_name="sa", consumer_name="sb"):
    """Producer on one node, consumer (optionally with busy self-work that
    lets it run ahead) on another.

    The cooperative executor visits subsystems in name order, so naming
    the consumer side first makes it race ahead of the producer — the way
    a genuinely parallel deployment would.
    """
    cosim = CoSimulation(snapshot_interval=snapshot_interval)
    ss_a = cosim.add_subsystem(cosim.add_node("na"), producer_name)
    ss_b = cosim.add_subsystem(cosim.add_node("nb"), consumer_name)
    prod = FunctionComponent("prod", producer(values), ports={"out": "out"})
    cons = FunctionComponent("cons", collector(sink, len(values)),
                             ports={"in": "in"})
    ss_a.add(prod)
    ss_b.add(cons)
    if consumer_work is not None:
        ss_b.add(consumer_work)
    channel = cosim.connect(ss_a, ss_b, mode=mode)
    channel.split_net(ss_a.wire("link", prod.port("out")),
                      ss_b.wire("link", cons.port("in")))
    return cosim


class TestChandyLamport:
    def test_snapshot_completes_and_is_consistent(self):
        sink = []
        cosim = two_subsystem_system([1, 2, 3, 4], sink)
        cosim.run(until=2.0)
        snap_id = cosim.snapshot()
        snap = cosim.registry.snapshots[snap_id]
        assert snap.complete
        assert set(snap.cuts) == {"sa", "sb"}
        for cut in snap.cuts.values():
            assert cut.checkpoint_id is not None

    def test_marks_travel_all_channels(self):
        sink = []
        cosim = two_subsystem_system([1], sink)
        cosim.run()
        cosim.snapshot()
        managers = cosim._managers
        total_sent = sum(m.marks_sent for m in managers.values())
        total_received = sum(m.marks_received for m in managers.values())
        assert total_sent == total_received == 2   # one per direction

    def test_in_flight_message_recorded_as_channel_state(self):
        """A signal sent before the sender's cut but not yet received must
        land in the recorded channel state."""
        sink = []
        cosim = two_subsystem_system([9], sink)
        cosim.start()
        ss_a = cosim.subsystem("sa")
        # Run the producer side only: its message is now in flight.
        ss_a.run()
        assert cosim.transport.pending("nb") >= 1
        # Initiate at the *receiver*: its cut happens before it sees the
        # message, the sender cuts on mark receipt after having sent it.
        node_b = cosim.node("nb")
        snap_id = cosim._managers["nb"].initiate(cosim.subsystem("sb"))
        for __ in range(6):
            for node in cosim._ordered_nodes():
                node.pump()
        snap = cosim.registry.snapshots[snap_id]
        assert snap.complete
        recorded = snap.recorded_messages()
        assert len(recorded) == 1
        assert recorded[0].payload[1] == "link"

    def test_duplicate_marks_ignored(self):
        """A subsystem checkpoints exactly once per identifier."""
        sink = []
        cosim = two_subsystem_system([1, 2], sink)
        cosim.run()
        before = len(cosim.subsystem("sa").checkpoints)
        cosim.snapshot()
        after = len(cosim.subsystem("sa").checkpoints)
        assert after == before + 1

    def test_snapshot_ids_are_unique(self):
        sink = []
        cosim = two_subsystem_system([1], sink)
        cosim.run()
        ids = {cosim.snapshot() for __ in range(3)}
        assert len(ids) == 3


class TestOptimisticChannels:
    def _run_optimistic(self, values, *, snapshot_interval=1.0):
        sink = []
        # The consumer has private busy-work letting its subsystem run far
        # ahead of the producer — the straggler trigger.
        def busy(comp):
            for __ in range(50):
                yield Advance(1.0)
                yield Send("tick", comp.local_time)

        def tock(comp):
            while True:
                yield Receive("in")

        busy_c = FunctionComponent("busy", busy, ports={"tick": "out"})
        tock_c = FunctionComponent("tock", tock, ports={"in": "in"})
        cosim = two_subsystem_system(
            values, sink, mode=ChannelMode.OPTIMISTIC,
            snapshot_interval=snapshot_interval,
            producer_name="zz-producer", consumer_name="aa-consumer")
        ss_b = cosim.subsystem("aa-consumer")
        ss_b.add(busy_c)
        ss_b.add(tock_c)
        ss_b.wire("busyline", busy_c.port("tick"), tock_c.port("in"))
        cosim.run()
        return cosim, sink

    def test_results_match_conservative_reference(self):
        values = [10, 20, 30, 40, 50]
        reference_sink = []
        reference = two_subsystem_system(values, reference_sink)
        reference.run()
        cosim, sink = self._run_optimistic(values)
        assert sink == reference_sink

    def test_rollbacks_happened(self):
        cosim, sink = self._run_optimistic([1, 2, 3])
        assert cosim.recovery.rollbacks, \
            "the consumer ran 50s ahead; stragglers were inevitable"

    def test_initial_snapshot_taken_automatically(self):
        cosim, sink = self._run_optimistic([1])
        assert cosim.registry.snapshots

    def test_no_rollbacks_when_consumer_cannot_run_ahead(self):
        """Without private work the consumer just waits: optimism never
        mispredicts."""
        sink = []
        values = [1, 2, 3]
        cosim = two_subsystem_system(values, sink,
                                     mode=ChannelMode.OPTIMISTIC,
                                     snapshot_interval=1.0)
        cosim.run()
        assert sink == [(1.0, 1), (2.0, 2), (3.0, 3)]
        assert not cosim.recovery.rollbacks

    def test_conservative_window_set_after_rollback(self):
        cosim, sink = self._run_optimistic([1, 2, 3])
        first_straggler = cosim.recovery.rollbacks[0][0]
        assert cosim.recovery.conservative_until >= first_straggler


class TestRecoveryEscalation:
    def test_unrecoverable_without_snapshots_raises(self):
        from repro.distributed.channel import StragglerError
        from repro.distributed.optimistic import RecoveryManager
        from repro.distributed.snapshot import SnapshotRegistry
        from repro.transport import InMemoryTransport

        manager = RecoveryManager({}, InMemoryTransport(), SnapshotRegistry())
        with pytest.raises(CheckpointError):
            manager.choose_snapshot(
                StragglerError("s", channel_id="ch", straggler_time=5.0),
                receiver="sb")
