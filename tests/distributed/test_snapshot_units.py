"""Unit-level coverage of the snapshot data structures and registry."""

import pytest

from repro.distributed.snapshot import (
    GlobalSnapshot,
    SnapshotRegistry,
    SubsystemCut,
    new_snapshot_id,
)
from repro.transport import Message, MessageKind


def _cut(snapshot_id, name, time, pending=()):
    cut = SubsystemCut(snapshot_id, name, checkpoint_id=1, time=time)
    cut.pending = set(pending)
    cut.recorded = {channel: [] for channel in pending} or {}
    return cut


class TestSubsystemCut:
    def test_complete_when_no_pending_marks(self):
        cut = _cut("s", "ss", 1.0)
        assert cut.complete
        cut.pending.add("ch1")
        assert not cut.complete


class TestGlobalSnapshot:
    def test_complete_requires_all_subsystems(self):
        snap = GlobalSnapshot("s", expected={"a", "b"})
        snap.cuts["a"] = _cut("s", "a", 1.0)
        assert not snap.complete
        snap.cuts["b"] = _cut("s", "b", 2.0)
        assert snap.complete

    def test_complete_requires_closed_channels(self):
        snap = GlobalSnapshot("s", expected={"a"})
        snap.cuts["a"] = _cut("s", "a", 1.0, pending=["ch"])
        assert not snap.complete

    def test_times(self):
        snap = GlobalSnapshot("s", expected={"a", "b"})
        snap.cuts["a"] = _cut("s", "a", 1.0)
        snap.cuts["b"] = _cut("s", "b", 4.0)
        assert snap.time_of("a") == 1.0
        assert snap.max_time() == 4.0

    def test_recorded_messages_flatten(self):
        snap = GlobalSnapshot("s", expected={"a"})
        cut = _cut("s", "a", 1.0)
        cut.recorded = {"ch": [Message(MessageKind.SIGNAL, "x", "y",
                                       channel="ch", time=0.5)]}
        snap.cuts["a"] = cut
        assert len(snap.recorded_messages()) == 1


class TestRegistry:
    def test_ensure_is_idempotent(self):
        registry = SnapshotRegistry()
        first = registry.ensure("s1", {"a"})
        second = registry.ensure("s1", {"a", "b"})
        assert first is second
        assert first.expected == {"a"}     # first writer wins

    def test_completed_sorted_by_time(self):
        registry = SnapshotRegistry()
        late = registry.ensure("late", {"a"})
        late.cuts["a"] = _cut("late", "a", 9.0)
        early = registry.ensure("early", {"a"})
        early.cuts["a"] = _cut("early", "a", 2.0)
        open_snap = registry.ensure("open", {"a"})
        open_snap.cuts["a"] = _cut("open", "a", 5.0, pending=["ch"])
        done = registry.completed()
        assert [snap.snapshot_id for snap in done] == ["early", "late"]

    def test_drop(self):
        registry = SnapshotRegistry()
        registry.ensure("s", {"a"})
        registry.drop("s")
        registry.drop("s")                 # idempotent
        assert registry.snapshots == {}

    def test_ids_unique(self):
        assert new_snapshot_id() != new_snapshot_id()
