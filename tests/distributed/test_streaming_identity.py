"""Telemetry bit-identity: turning the continuous telemetry plane on —
time-series sampling, per-link health and delta streaming — must leave a
run's deterministic report projection byte for byte unchanged.

Each case runs the same workload twice, dark and fully instrumented, and
compares ``report.to_dict()`` (the default projection excludes the
wall-clock-bearing sections: timings, health rows, series)."""

import pytest

from repro.bench.workloads import (
    compute_star,
    compute_star_multiprocess,
    streaming_pair,
)
from repro.observability import TimeSeriesRecorder, attach_health


def telemetry_kwargs():
    return dict(series_interval=1.0, series_wall_interval=0.5,
                health=True, stream_telemetry=True)


class TestMultiprocess:
    def _run(self, **kwargs):
        cosim = compute_star_multiprocess(2, 3, words=50, **kwargs)
        cosim.run(until=100.0, timeout=60.0)
        return cosim.report()

    def test_streaming_run_matches_dark_run(self):
        dark = self._run()
        lit = self._run(**telemetry_kwargs())
        assert lit.to_dict() == dark.to_dict()
        # ...and the instrumented run actually produced the sections.
        assert lit.link_health
        assert lit.timeseries
        assert not dark.link_health
        assert not dark.timeseries

    def test_streaming_run_matches_dark_run_on_shm(self):
        dark = self._run(transport="shm")
        lit = self._run(transport="shm", **telemetry_kwargs())
        assert lit.to_dict() == dark.to_dict()
        assert lit.link_health

    def test_streaming_run_matches_dark_run_unbatched(self):
        dark = self._run(batching=False)
        lit = self._run(batching=False, **telemetry_kwargs())
        assert lit.to_dict() == dark.to_dict()

    def test_opt_in_projections_carry_the_new_sections(self):
        lit = self._run(**telemetry_kwargs())
        document = lit.to_dict(include_health=True, include_series=True)
        assert document["link_health"] == lit.link_health
        assert document["timeseries"] == lit.timeseries
        # series keys are node-qualified after the merge
        assert all("/" in name for name in lit.timeseries)


class TestSingleProcessExecutors:
    def _instrument(self, cosim):
        cosim.telemetry.attach_series(TimeSeriesRecorder())
        attach_health(cosim.transport, cosim.telemetry)
        return cosim

    def test_cooperative_identity(self):
        dark = streaming_pair(30, 1.0)
        dark.run()
        lit = self._instrument(streaming_pair(30, 1.0))
        lit.run()
        assert lit.report().to_dict() == dark.report().to_dict()
        assert lit.report().link_health
        assert lit.report().timeseries

    def test_threaded_identity(self):
        dark = compute_star(2, 3, words=50, executor="threaded")
        dark.run(until=100.0)
        lit = self._instrument(
            compute_star(2, 3, words=50, executor="threaded"))
        lit.run(until=100.0)
        dark_doc, lit_doc = dark.report().to_dict(), lit.report().to_dict()
        # Threaded runs interleave nondeterministically, so compare the
        # deterministic core rather than whole documents.
        assert [row["name"] for row in lit_doc["subsystems"]] \
            == [row["name"] for row in dark_doc["subsystems"]]
        assert sorted((row["name"], row["time"])
                      for row in lit_doc["subsystems"]) \
            == sorted((row["name"], row["time"])
                      for row in dark_doc["subsystems"])
        assert lit.report().link_health
        assert lit.report().timeseries
