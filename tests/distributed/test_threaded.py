"""The thread-per-node executor: parity with the cooperative one."""

import pytest

from repro.core import (
    Advance,
    FunctionComponent,
    Receive,
    Send,
    SimulationError,
)
from repro.distributed import ChannelMode, ThreadedCoSimulation
from repro.transport import TcpTransport


def producer(values):
    def behave(comp):
        for v in values:
            yield Advance(1.0)
            yield Send("out", v)
    return behave


def consumer(count):
    def behave(comp):
        comp.got = []
        for __ in range(count):
            t, v = yield Receive("in")
            comp.got.append((t, v))
    return behave


def build(runner, values):
    ss_a = runner.add_subsystem(runner.add_node("na"), "sa")
    ss_b = runner.add_subsystem(runner.add_node("nb"), "sb")
    prod = FunctionComponent("prod", producer(values), ports={"out": "out"})
    cons = FunctionComponent("cons", consumer(len(values)),
                             ports={"in": "in"})
    ss_a.add(prod)
    ss_b.add(cons)
    channel = runner.connect(ss_a, ss_b)
    channel.split_net(ss_a.wire("w", prod.port("out")),
                      ss_b.wire("w", cons.port("in")))
    return cons


class TestThreadedExecutor:
    def test_pipeline_over_inmemory_transport(self):
        runner = ThreadedCoSimulation()
        cons = build(runner, list(range(8)))
        runner.run(timeout=30.0)
        assert cons.got == [(float(i + 1), i) for i in range(8)]

    def test_pipeline_over_tcp(self):
        with TcpTransport() as transport:
            runner = ThreadedCoSimulation(transport=transport)
            cons = build(runner, [5, 6, 7])
            runner.run(timeout=30.0)
            assert cons.got == [(1.0, 5), (2.0, 6), (3.0, 7)]

    def test_bidirectional_ping_pong(self):
        runner = ThreadedCoSimulation()
        ss_a = runner.add_subsystem(runner.add_node("na"), "sa")
        ss_b = runner.add_subsystem(runner.add_node("nb"), "sb")

        def ping(comp):
            comp.rounds = []
            for i in range(6):
                yield Advance(1.0)
                yield Send("tx", i)
                t, v = yield Receive("rx")
                comp.rounds.append((t, v))

        def pong(comp):
            while True:
                t, v = yield Receive("rx")
                yield Advance(0.5)
                yield Send("tx", v * 2)

        a = FunctionComponent("ping", ping, ports={"tx": "out", "rx": "in"})
        b = FunctionComponent("pong", pong, ports={"tx": "out", "rx": "in"})
        ss_a.add(a)
        ss_b.add(b)
        channel = runner.connect(ss_a, ss_b)
        channel.split_net(ss_a.wire("f", a.port("tx")),
                          ss_b.wire("f", b.port("rx")))
        channel.split_net(ss_b.wire("r", b.port("tx")),
                          ss_a.wire("r", a.port("rx")))
        runner.run(timeout=30.0)
        assert a.rounds == [(1.5 * (i + 1), 2 * i) for i in range(6)]

    def test_optimistic_channels_rejected(self):
        runner = ThreadedCoSimulation()
        ss_a = runner.add_subsystem(runner.add_node("na"), "sa")
        ss_b = runner.add_subsystem(runner.add_node("nb"), "sb")
        with pytest.raises(SimulationError):
            runner.connect(ss_a, ss_b, mode=ChannelMode.OPTIMISTIC)

    def test_matches_cooperative_executor(self):
        from repro.distributed import CoSimulation
        values = list(range(10))

        def run_cooperative():
            cosim = CoSimulation()
            ss_a = cosim.add_subsystem(cosim.add_node("na"), "sa")
            ss_b = cosim.add_subsystem(cosim.add_node("nb"), "sb")
            prod = FunctionComponent("prod", producer(values),
                                     ports={"out": "out"})
            cons = FunctionComponent("cons", consumer(len(values)),
                                     ports={"in": "in"})
            ss_a.add(prod)
            ss_b.add(cons)
            channel = cosim.connect(ss_a, ss_b)
            channel.split_net(ss_a.wire("w", prod.port("out")),
                              ss_b.wire("w", cons.port("in")))
            cosim.run()
            return cons.got

        runner = ThreadedCoSimulation()
        cons = build(runner, values)
        runner.run(timeout=30.0)
        assert cons.got == run_cooperative()


class TestThreadedFaults:
    def test_component_error_propagates_to_caller(self):
        """A component crashing on one node's thread must surface as the
        run's exception, not vanish into the worker."""
        runner = ThreadedCoSimulation()
        ss_a = runner.add_subsystem(runner.add_node("na"), "sa")
        ss_b = runner.add_subsystem(runner.add_node("nb"), "sb")

        def bomb(comp):
            yield Advance(1.0)
            yield Send("out", "boom")
            raise RuntimeError("component exploded")

        def victim(comp):
            while True:
                yield Receive("in")

        a = FunctionComponent("bomb", bomb, ports={"out": "out"})
        b = FunctionComponent("victim", victim, ports={"in": "in"})
        ss_a.add(a)
        ss_b.add(b)
        channel = runner.connect(ss_a, ss_b)
        channel.split_net(ss_a.wire("w", a.port("out")),
                          ss_b.wire("w", b.port("in")))
        with pytest.raises(RuntimeError, match="component exploded"):
            runner.run(timeout=30.0)
