"""Direct unit tests of the topology analyser (paper 2.2.2.1)."""

import networkx as nx
import pytest

from repro.distributed.topology import offending_cycles


def graph(*edges):
    g = nx.DiGraph()
    g.add_edges_from(edges)
    return g


class TestOffendingCycles:
    def test_dag_is_clean(self):
        assert offending_cycles(graph(("a", "b"), ("b", "c"),
                                      ("a", "c"))) == []

    def test_bidirectional_pair_allowed(self):
        assert offending_cycles(graph(("a", "b"), ("b", "a"))) == []

    def test_three_cycle_flagged(self):
        bad = offending_cycles(graph(("a", "b"), ("b", "c"), ("c", "a")))
        assert len(bad) == 1
        assert set(bad[0]) == {"a", "b", "c"}

    def test_cycle_through_mutual_edge_still_flagged(self):
        """A 3-cycle that borrows one leg from a bidirectional pair is
        still a non-simple cycle: the safe-time self-restriction removal
        cannot break it."""
        g = graph(("a", "b"), ("b", "a"),       # simple cycle (fine)
                  ("b", "c"), ("c", "a"))       # ...but a->b->c->a exists
        bad = offending_cycles(g)
        assert any(set(cycle) == {"a", "b", "c"} for cycle in bad)

    def test_two_disjoint_pairs(self):
        g = graph(("a", "b"), ("b", "a"), ("c", "d"), ("d", "c"))
        assert offending_cycles(g) == []

    def test_long_cycle(self):
        edges = [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")]
        assert len(offending_cycles(graph(*edges))) == 1


class TestCheckpointPrimitives:
    """Direct capture/reinstate coverage, including net state."""

    def test_net_values_roundtrip(self):
        from repro.core import (Advance, FunctionComponent, Receive, Send,
                                Subsystem)
        from repro.core.checkpoint import capture, reinstate

        subsystem = Subsystem("ss")

        def pulse(comp):
            yield Advance(1.0)
            yield Send("out", 0xAB)
            yield Advance(1.0)
            yield Send("out", 0xCD)

        def sink(comp):
            while True:
                yield Receive("in")

        p = FunctionComponent("p", pulse, ports={"out": "out"})
        c = FunctionComponent("c", sink, ports={"in": "in"})
        subsystem.add(p)
        subsystem.add(c)
        net = subsystem.wire("sig", p.port("out"), c.port("in"))
        subsystem.run(until=1.0)
        image = capture(subsystem, checkpoint_id=7, label="probe")
        assert image.nets["sig"].posts == 2      # producer ran ahead
        value_at_capture = net.value
        subsystem.run()
        net.value = "corrupted"
        net.posts = 999
        reinstate(subsystem, image)
        assert net.value == value_at_capture
        assert net.posts == 2
        assert subsystem.now == 1.0
        subsystem.run()
        assert net.value == 0xCD
