"""Causal-trace propagation under chaos: the PR 5 acceptance properties.

Same-seed runs — with drops, duplicates, delays, reorders and retries in
play, batching on and off, under all three executors — must yield
causally *consistent* chains: every span-linked ``MSG_RECV`` pairs with
a recorded ``MSG_SEND``, every suppressed duplicate carries the original
send's span, and parents resolve.  On the fault-free workload the
guarantee is stronger: span populations and the stall-attribution table
are bit-identical across deployment modes.
"""

import pytest

from repro.bench.workloads import compute_star, compute_star_multiprocess
from repro.faults import FaultPlan, LinkFaults, RetryPolicy
from repro.observability import Telemetry, causal_chains

CHAOS = dict(seed=0, default=LinkFaults(drop=0.12, duplicate=0.15,
                                        delay=0.12, delay_ticks=2,
                                        reorder=0.1))
FAST_RETRY = dict(max_attempts=8, base_delay=0.0005, max_delay=0.002,
                  jitter=0.0)

#: Large enough that no ring-buffer eviction occurs on the small star —
#: eviction would make cross-executor trace comparison meaningless.
CAPACITY = 65536


def chaos_kwargs():
    return dict(fault_plan=FaultPlan(**CHAOS),
                retry_policy=RetryPolicy(**FAST_RETRY))


def run_star(executor, *, batching=False, chaos=True, rounds=6):
    kwargs = chaos_kwargs() if chaos else {}
    if executor in ("multiprocess", "multiprocess_shm"):
        if executor == "multiprocess_shm":
            kwargs["transport"] = "shm"
        cosim = compute_star_multiprocess(2, rounds, words=50,
                                          trace_capacity=CAPACITY, **kwargs)
        cosim.run(until=100.0, timeout=90.0)
        cosim.close()
    else:
        cosim = compute_star(2, rounds, words=50, executor=executor,
                             batching=batching,
                             telemetry=Telemetry(trace_capacity=CAPACITY),
                             **kwargs)
        cosim.run(until=100.0)
    return cosim.report()


def assert_causally_consistent(report):
    chains = causal_chains(report.trace_records)
    assert chains["sends"], "no causally linked sends recorded"
    assert chains["orphan_receives"] == [], \
        f"orphan receives: {chains['orphan_receives'][:3]}"
    assert chains["broken_parents"] == [], \
        f"broken parents: {chains['broken_parents'][:3]}"
    return chains


class TestChainConsistency:
    @pytest.mark.parametrize("executor", ["cosim", "threaded"])
    @pytest.mark.parametrize("batching", [False, True])
    def test_single_process_chaos_chains_link(self, executor, batching):
        report = run_star(executor, batching=batching)
        chains = assert_causally_consistent(report)
        assert chains["max_hop"] > 0

    @pytest.mark.parametrize("executor", ["multiprocess",
                                          "multiprocess_shm"])
    def test_multiprocess_chaos_chains_link(self, executor):
        report = run_star(executor)
        assert_causally_consistent(report)

    def test_duplicates_share_the_sends_span(self):
        report = run_star("cosim")
        chains = assert_causally_consistent(report)
        suppressed = [r for r in report.trace_records
                      if r.get("action") == "duplicate-suppressed"]
        assert report.faults.get("fault.duplicates", 0) > 0
        assert suppressed, "chaos injected duplicates but none suppressed"
        for record in suppressed:
            assert record.get("span") in chains["sends"], record

    def test_clean_run_has_no_fault_records_but_links(self):
        report = run_star("cosim", chaos=False)
        assert_causally_consistent(report)
        assert not [r for r in report.trace_records
                    if r["kind"] == "fault-inject"]


class TestCrossExecutorDeterminism:
    """Determinism properties hold on the deterministic workload (no
    fault plane): with chaos injected, *delivery order* of same-virtual-
    time messages is executor-pacing-dependent (delay ticks are released
    at polls), so causal edges legitimately differ even though final
    state and fault counters match — chaos runs are covered by the chain
    *consistency* tests above instead."""

    def test_attribution_bit_identical_across_executors(self):
        """The tentpole acceptance criterion: the stall-attribution table
        is a pure function of the deterministic dispatch sequence, so
        cooperative, threaded and multiprocess runs of the same scenario
        must agree byte for byte."""
        coop = run_star("cosim", chaos=False)
        threaded = run_star("threaded", chaos=False)
        multiprocess = run_star("multiprocess", chaos=False)
        shm = run_star("multiprocess_shm", chaos=False)
        assert coop.stall_attribution == threaded.stall_attribution
        assert coop.stall_attribution == multiprocess.stall_attribution
        assert coop.stall_attribution == shm.stall_attribution
        assert coop.stall_attribution, "attribution table is empty"
        criticals = [row for row in coop.stall_attribution
                     if row["critical"]]
        assert criticals, "no critical peer flagged"

    def test_attribution_invariant_under_batching(self):
        off = run_star("cosim", batching=False, chaos=False)
        on = run_star("cosim", batching=True, chaos=False)
        assert off.stall_attribution == on.stall_attribution

    def test_span_populations_identical_across_executors(self):
        """Every executor mints the same spans: the same messages cross
        the same links, so the sorted span list per origin node matches.
        (Exact parent edges at a two-input merge point may differ — two
        same-stamp arrivals dispatch in pacing-dependent order — which is
        why the comparison is span populations, not parent edges, and
        why attribution aggregates per instant.)"""
        def spans(report):
            return sorted(r["span"] for r in report.trace_records
                          if r["kind"] == "msg-send" and "span" in r)
        coop = run_star("cosim", chaos=False)
        threaded = run_star("threaded", chaos=False)
        multiprocess = run_star("multiprocess", chaos=False)
        shm = run_star("multiprocess_shm", chaos=False)
        assert spans(coop) == spans(threaded) == spans(multiprocess)
        assert spans(multiprocess) == spans(shm)
        assert spans(coop), "no spans minted"
