"""Every shipped example must run to completion, as a subprocess.

The examples double as integration tests of the public API surface; this
keeps them from rotting.  Slow ones run with reduced workloads.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..",
                            "examples")
SRC_DIR = os.path.abspath(os.path.join(EXAMPLES_DIR, "..", "src"))


def _example_env():
    """The caller's environment with ``src`` prepended to ``PYTHONPATH``.

    The examples import ``repro`` from the source tree; the test process
    may have it importable via conftest path tricks or an editable
    install, but the example *subprocesses* inherit only the environment.
    """
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = SRC_DIR + (os.pathsep + existing if existing else "")
    return env

FAST_EXAMPLES = [
    "quickstart.py",
    "chaos.py",
    "iss_firmware.py",
    "optimistic_recovery.py",
    "hardware_in_the_loop.py",
    "debug_and_waves.py",
    "migrate_to_hardware.py",
    "vendor_component_evaluation.py",
    "legacy_tool_wrapper.py",
    "real_sockets.py",
    "multiprocess_nodes.py",
    "migrate_node.py",
]


def run_example(name, *args, timeout=120, cwd=None):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    return subprocess.run(
        [sys.executable, path, *args], capture_output=True, text=True,
        timeout=timeout, cwd=cwd or EXAMPLES_DIR, env=_example_env())


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, tmp_path):
    # run in a scratch directory so examples that write artefacts
    # (waves.vcd) do not litter the repository
    result = run_example(name, cwd=str(tmp_path))
    assert result.returncode == 0, (
        f"{name} failed:\n{result.stdout}\n{result.stderr}")
    assert result.stdout.strip(), f"{name} printed nothing"


def test_wubbleu_page_load_small():
    result = run_example("wubbleu_page_load.py", "--small", timeout=300)
    assert result.returncode == 0, result.stderr
    assert "Table 1" in result.stdout
    assert "remote word passage" in result.stdout


def test_distributed_codesign():
    result = run_example("distributed_codesign.py", timeout=300)
    assert result.returncode == 0, result.stderr
    assert "suggested balanced partition" in result.stdout


def test_example_count_matches_readme_claim():
    shipped = sorted(f for f in os.listdir(EXAMPLES_DIR)
                     if f.endswith(".py"))
    assert len(shipped) >= 10
    covered = set(FAST_EXAMPLES) | {"wubbleu_page_load.py",
                                    "distributed_codesign.py"}
    assert covered == set(shipped), (
        "examples without a smoke test: "
        f"{sorted(set(shipped) - covered)}")
