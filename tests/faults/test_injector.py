"""The fault injector: send decisions, retries, held traffic, dedup."""

import pytest

from repro.core import LinkDown
from repro.faults import (
    FaultInjector,
    FaultPlan,
    LinkFaults,
    NO_RETRY,
    NodeCrash,
    Partition,
    RetryPolicy,
)
from repro.transport import Message, MessageKind


def _msg(src="a", dst="b", time=1.0, payload=None, kind=MessageKind.SIGNAL):
    return Message(kind=kind, src=src, dst=dst, channel="ch", time=time,
                   payload=payload)


class TestOnSend:
    def test_fault_free_plan_delivers_everything(self):
        injector = FaultInjector(FaultPlan(seed=0))
        for i in range(20):
            assert injector.on_send(_msg(payload=i)) == ("deliver", 0)
        assert injector.summary() == {}

    def test_drops_consume_retry_attempts_then_deliver(self):
        plan = FaultPlan(seed=1, default=LinkFaults(drop=0.4))
        injector = FaultInjector(plan, retry_policy=RetryPolicy(
            max_attempts=50, base_delay=0.0, jitter=0.0))
        for i in range(200):
            action, __ = injector.on_send(_msg(payload=i))
            assert action in ("deliver", "duplicate", "delay", "reorder")
        counts = injector.summary()
        assert counts["fault.drops"] > 0
        assert counts["retry.attempts"] == counts["fault.drops"]
        assert "retry.giveups" not in counts

    def test_retry_exhaustion_raises_typed_link_down(self):
        plan = FaultPlan(seed=2, default=LinkFaults(drop=1.0))
        injector = FaultInjector(plan, retry_policy=NO_RETRY)
        with pytest.raises(LinkDown) as err:
            injector.on_send(_msg())
        assert err.value.src == "a"
        assert err.value.dst == "b"
        assert err.value.attempts == 1
        assert injector.summary()["retry.giveups"] == 1

    def test_excluded_kinds_bypass_the_plan(self):
        plan = FaultPlan(seed=3, default=LinkFaults(drop=1.0))
        injector = FaultInjector(plan, retry_policy=NO_RETRY)
        request = _msg(kind=MessageKind.SAFE_TIME_REQUEST)
        assert injector.on_send(request) == ("deliver", 0)

    def test_partition_counts_separately(self):
        plan = FaultPlan(seed=4, partitions=(Partition("a", "b"),))
        injector = FaultInjector(plan, retry_policy=NO_RETRY)
        with pytest.raises(LinkDown):
            injector.on_send(_msg())
        counts = injector.summary()
        assert counts["fault.partition_drops"] == 1
        assert "fault.drops" not in counts

    def test_same_seed_same_counters(self):
        def one_run():
            plan = FaultPlan(seed=5, default=LinkFaults(
                drop=0.3, duplicate=0.1, delay=0.1))
            injector = FaultInjector(plan)
            for i in range(300):
                injector.on_send(_msg(payload=i))
            return injector.summary()

        assert one_run() == one_run()


class TestCrashedNodes:
    def test_sends_become_lost(self):
        injector = FaultInjector(FaultPlan(seed=0))
        injector.mark_down("b")
        assert injector.on_send(_msg()) == ("lost", 0)
        assert injector.summary()["fault.messages_lost"] == 1
        injector.mark_up("b")
        assert injector.on_send(_msg()) == ("deliver", 0)

    def test_calls_raise(self):
        injector = FaultInjector(FaultPlan(seed=0))
        injector.mark_down("b")
        with pytest.raises(LinkDown):
            injector.check_call(_msg(kind=MessageKind.SAFE_TIME_REQUEST))
        assert injector.summary()["fault.calls_failed"] == 1


class TestHeldTraffic:
    def test_delay_releases_after_ticks(self):
        injector = FaultInjector(FaultPlan(seed=0))
        injector.hold("b", "parcel", 2)
        assert injector.release_due("b") == []          # tick 1
        assert injector.release_due("b") == ["parcel"]  # tick 2
        assert injector.release_due("b") == []

    def test_swap_released_behind_next_send(self):
        injector = FaultInjector(FaultPlan(seed=0))
        injector.hold_swap("a", "b", "first")
        assert injector.take_swaps("a", "b") == ["first"]
        assert injector.take_swaps("a", "b") == []

    def test_orphan_swap_flushed_at_poll(self):
        injector = FaultInjector(FaultPlan(seed=0))
        injector.hold_swap("a", "b", "orphan")
        assert injector.release_due("b") == ["orphan"]

    def test_second_swap_degrades_to_delay(self):
        injector = FaultInjector(FaultPlan(seed=0))
        injector.hold_swap("a", "b", "one")
        injector.hold_swap("a", "b", "two")
        assert injector.take_swaps("a", "b") == ["one"]
        assert injector.release_due("b") == ["two"]

    def test_held_pending_and_flush(self):
        injector = FaultInjector(FaultPlan(seed=0))
        injector.hold("b", "x", 5)
        injector.hold_swap("a", "b", "y")
        assert injector.held_pending() == 2
        assert injector.held_pending("b") == 2
        assert injector.held_pending("other") == 0
        assert injector.flush() == 2
        assert injector.held_pending() == 0

    def test_purge_node(self):
        injector = FaultInjector(FaultPlan(seed=0))
        injector.hold("b", "x", 5)
        injector.hold_swap("a", "b", "y")
        injector.hold("c", "z", 5)
        assert injector.purge_node("b") == 2
        assert injector.held_pending() == 1


class TestDuplicateSuppression:
    def test_exactly_once_semantics(self):
        injector = FaultInjector(FaultPlan(seed=0))
        message = _msg(payload="dup")
        injector.expect_duplicate("b", message.msg_id, src=message.src)
        results = [injector.suppress_duplicate("b", message)
                   for __ in range(3)]
        assert results == [True, False, False]
        assert injector.summary()["fault.duplicates_suppressed"] == 1
