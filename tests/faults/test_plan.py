"""The injection plane: seeded plans, partitions, retry policy, detector."""

import pytest

from repro.core import ConfigurationError
from repro.faults import (
    DELAY,
    DELIVER,
    DROP,
    DUPLICATE,
    FailureDetector,
    FaultPlan,
    LinkFaults,
    NO_FAULTS,
    NO_RETRY,
    NodeCrash,
    PARTITION,
    Partition,
    REORDER,
    RetryPolicy,
)


class TestLinkFaults:
    def test_defaults_are_fault_free(self):
        assert NO_FAULTS.drop == 0.0
        assert NO_FAULTS.duplicate == 0.0
        assert NO_FAULTS.delay == 0.0
        assert NO_FAULTS.reorder == 0.0

    def test_rates_validated(self):
        with pytest.raises(ConfigurationError):
            LinkFaults(drop=-0.1)
        with pytest.raises(ConfigurationError):
            LinkFaults(drop=1.5)
        with pytest.raises(ConfigurationError):
            LinkFaults(drop=0.6, duplicate=0.6)     # sum > 1
        with pytest.raises(ConfigurationError):
            LinkFaults(delay=0.1, delay_ticks=0)


class TestPartition:
    def test_symmetric_and_windowed(self):
        part = Partition("a", "b", start=2.0, stop=5.0)
        assert part.covers("a", "b", 3.0)
        assert part.covers("b", "a", 3.0)
        assert not part.covers("a", "b", 1.0)
        assert not part.covers("a", "b", 5.0)       # stop is exclusive
        assert not part.covers("a", "c", 3.0)

    def test_default_window_is_forever(self):
        part = Partition("a", "b")
        assert part.covers("b", "a", 0.0)
        assert part.covers("a", "b", 1e9)


class TestFaultPlanDecisions:
    def test_no_faults_always_deliver(self):
        plan = FaultPlan(seed=7)
        for seq in range(50):
            assert plan.decide("a", "b", seq, 0, 0.0) == (DELIVER, 0)

    def test_decisions_replay_bit_for_bit(self):
        def roll(seed):
            plan = FaultPlan(seed=seed, default=LinkFaults(
                drop=0.2, duplicate=0.1, delay=0.1, reorder=0.05))
            return [plan.decide("a", "b", seq, 0, 0.0)
                    for seq in range(200)]

        assert roll(3) == roll(3)
        assert roll(3) != roll(4)

    def test_drop_rate_is_roughly_honoured(self):
        plan = FaultPlan(seed=1, default=LinkFaults(drop=0.3))
        n = 2000
        drops = sum(plan.decide("a", "b", seq, 0, 0.0)[0] == DROP
                    for seq in range(n))
        assert 0.25 < drops / n < 0.35

    def test_attempts_reroll_independently(self):
        plan = FaultPlan(seed=5, default=LinkFaults(drop=0.5))
        outcomes = {plan.decide("a", "b", 1, attempt, 0.0)[0]
                    for attempt in range(64)}
        assert outcomes == {DROP, DELIVER}

    def test_per_link_overrides_and_direction(self):
        plan = FaultPlan(seed=2, links={("a", "b"): LinkFaults(drop=1.0)})
        assert plan.decide("a", "b", 1, 0, 0.0)[0] == DROP
        # the reversed direction inherits the pair's faults too
        assert plan.decide("b", "a", 1, 0, 0.0)[0] == DROP
        assert plan.decide("a", "c", 1, 0, 0.0)[0] == DELIVER

    def test_partition_window_wins(self):
        plan = FaultPlan(seed=0, partitions=(
            Partition("a", "b", start=1.0, stop=2.0),))
        assert plan.decide("a", "b", 1, 0, 1.5)[0] == PARTITION
        assert plan.decide("a", "b", 2, 0, 2.5)[0] == DELIVER

    def test_delay_carries_ticks(self):
        plan = FaultPlan(seed=9, default=LinkFaults(delay=1.0, delay_ticks=4))
        action, ticks = plan.decide("a", "b", 1, 0, 0.0)
        assert action == DELAY
        assert ticks == 4

    def test_duplicate_and_reorder_reachable(self):
        plan = FaultPlan(seed=11, default=LinkFaults(
            duplicate=0.5, reorder=0.5))
        seen = {plan.decide("a", "b", seq, 0, 0.0)[0] for seq in range(100)}
        assert seen == {DUPLICATE, REORDER}

    def test_kinds_filter(self):
        class FakeMessage:
            def __init__(self, kind):
                self.kind = kind

        plan = FaultPlan(seed=0)
        assert plan.applies(FakeMessage("signal"))
        assert plan.applies(FakeMessage("mark"))
        assert not plan.applies(FakeMessage("safe-time-request"))

    def test_seed_validated(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(seed=-1)

    def test_uniform_in_unit_interval(self):
        plan = FaultPlan(seed=13)
        draws = [plan.uniform("x", i) for i in range(500)]
        assert all(0.0 <= u < 1.0 for u in draws)
        assert len(set(draws)) > 490                # no obvious collisions


class TestRetryPolicy:
    def test_backoff_grows_then_caps(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5,
                             jitter=0.0)
        delays = [policy.backoff(i) for i in range(5)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_jitter_spreads_around_midpoint(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, max_delay=1.0,
                             jitter=0.5)
        assert policy.backoff(0, u=0.5) == pytest.approx(1.0)
        assert policy.backoff(0, u=0.0) == pytest.approx(0.5)
        assert policy.backoff(0, u=1.0) == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=2.0)

    def test_no_retry_fails_fast(self):
        assert NO_RETRY.max_attempts == 1
        assert NO_RETRY.backoff(0) == 0.0


class TestNodeCrash:
    def test_fields(self):
        crash = NodeCrash("beta", at_time=4.0)
        assert crash.node == "beta"
        assert crash.at_time == 4.0


class TestFailureDetector:
    def test_suspects_after_timeout(self):
        det = FailureDetector(timeout=2.0)
        det.beat("a", 0.0)
        det.beat("b", 0.0)
        assert det.suspects(1.0) == []
        det.beat("a", 2.0)
        assert det.suspects(3.5) == ["b"]
        assert det.suspicions == 1

    def test_recovered_node_can_be_suspected_again(self):
        det = FailureDetector(timeout=1.0)
        det.beat("a", 0.0)
        assert det.suspects(2.0) == ["a"]
        det.beat("a", 2.0)          # it came back
        assert det.suspects(2.5) == []
        assert det.suspects(4.0) == ["a"]
        assert det.suspicions == 2

    def test_forget(self):
        det = FailureDetector(timeout=1.0)
        det.beat("a", 0.0)
        det.forget("a")
        assert det.suspects(10.0) == []

    def test_timeout_validated(self):
        with pytest.raises(ConfigurationError):
            FailureDetector(timeout=0.0)
