"""The gate-level circuit library on the simulated Pamette."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError
from repro.hw import SimulatedPamette
from repro.hw.circuits import (
    LFSR_TAPS,
    adder_bitstream,
    lfsr_bitstream,
    lfsr_reference,
    shift_register_bitstream,
)


class TestShiftRegister:
    def test_serial_in_parallel_out(self):
        board = SimulatedPamette(shift_register_bitstream(4))
        # shift in 1,0,1,1 (LSB-first through the chain)
        for bit in (1, 0, 1, 1):
            board.poke(0x10, bit)
            board.run_for(1)
        # s0 (LSB of the readback) holds the newest bit, s3 the oldest:
        # in-order 1,0,1,1 reads back as s3..s0 = 1,0,1,1 -> 0b1011
        assert board.peek(0x0) == 0b1011

    def test_msb_irq_is_sync_detector(self):
        board = SimulatedPamette(shift_register_bitstream(3, tap_irq=True))
        board.poke(0x10, 1)
        records = board.run_for(5)
        # the 1 reaches the MSB after 3 clocks and stays (level held)
        assert [r.tick for r in records] == [3]
        assert records[0].line == "msb"

    def test_zero_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            shift_register_bitstream(0)


class TestLfsr:
    @pytest.mark.parametrize("bits", sorted(LFSR_TAPS))
    def test_matches_software_reference(self, bits):
        board = SimulatedPamette(lfsr_bitstream(bits, init=1))
        expected = lfsr_reference(bits, 1, 30)
        got = []
        for __ in range(30):
            board.run_for(1)
            got.append(board.peek(0x0))
        assert got == expected

    @pytest.mark.parametrize("bits", [3, 4, 5, 6, 7])
    def test_maximal_period(self, bits):
        """Canonical taps give the full 2^n - 1 cycle through every
        non-zero state."""
        board = SimulatedPamette(lfsr_bitstream(bits, init=1))
        seen = set()
        period = (1 << bits) - 1
        for __ in range(period):
            board.run_for(1)
            seen.add(board.peek(0x0))
        assert len(seen) == period
        assert 0 not in seen

    def test_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            lfsr_bitstream(9)               # no canonical taps listed
        with pytest.raises(ConfigurationError):
            lfsr_bitstream(4, init=0)
        with pytest.raises(ConfigurationError):
            lfsr_bitstream(4, init=16)

    @given(st.integers(min_value=1, max_value=255))
    @settings(max_examples=20, deadline=None)
    def test_any_seed_tracks_reference(self, init):
        board = SimulatedPamette(lfsr_bitstream(8, init=init))
        expected = lfsr_reference(8, init, 12)
        got = []
        for __ in range(12):
            board.run_for(1)
            got.append(board.peek(0x0))
        assert got == expected


class TestAdder:
    def test_basic_addition(self):
        board = SimulatedPamette(adder_bitstream(4))
        board.poke(0x10, 7)
        board.poke(0x14, 5)
        board.run_for(1)                     # one clock to register
        assert board.peek(0x0) == 12

    def test_carry_out_in_top_bit(self):
        board = SimulatedPamette(adder_bitstream(4))
        board.poke(0x10, 15)
        board.poke(0x14, 1)
        board.run_for(1)
        assert board.peek(0x0) == 16         # 0b1_0000: carry set

    def test_registered_output_lags_inputs(self):
        board = SimulatedPamette(adder_bitstream(4))
        board.poke(0x10, 3)
        board.poke(0x14, 4)
        assert board.peek(0x0) == 0          # before the clock edge
        board.run_for(1)
        assert board.peek(0x0) == 7
        board.poke(0x10, 9)
        assert board.peek(0x0) == 7          # still the old sum
        board.run_for(1)
        assert board.peek(0x0) == 13

    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=255))
    @settings(max_examples=40, deadline=None)
    def test_exhaustive_property(self, a, b):
        board = SimulatedPamette(adder_bitstream(8))
        board.poke(0x10, a)
        board.poke(0x14, b)
        board.run_for(1)
        assert board.peek(0x0) == a + b
