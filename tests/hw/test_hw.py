"""Hardware in the loop: Pamette netlists, devices, remote servers."""

import pytest

from repro.core import (
    Advance,
    ConfigurationError,
    FunctionComponent,
    HardwareStubError,
    Receive,
    Send,
    Simulator,
)
from repro.hw import (
    REG_CONTROL,
    REG_DATA,
    REG_STATUS,
    Bitstream,
    HardwareComponent,
    RemoteHardwareClient,
    RemoteHardwareServer,
    SimulatedPamette,
    TimerDevice,
    UartDevice,
    counter_bitstream,
)


class TestBitstream:
    def test_counter_counts(self):
        board = SimulatedPamette(counter_bitstream(4))
        board.run_for(5)
        assert board.peek(0x0) == 5
        board.run_for(11)
        assert board.peek(0x0) == 0     # wrapped at 16

    def test_wrap_interrupt(self):
        board = SimulatedPamette(counter_bitstream(3, irq_on_wrap=True))
        records = board.run_for(20)
        # carry rises when count reaches 7: ticks 7 and 15.
        assert [r.tick for r in records] == [7, 15]
        assert all(r.line == "wrap" for r in records)

    def test_stall_freezes_state_not_time(self):
        board = SimulatedPamette(counter_bitstream(4))
        board.run_for(3)
        board.stall()
        board.run_for(5)
        assert board.read_time() == 8
        assert board.peek(0x0) == 3
        board.resume()
        board.run_for(1)
        assert board.peek(0x0) == 4

    def test_input_register_feeds_logic(self):
        bs = Bitstream("andbox")
        bs.add_input_register(0x10, "a", 2)
        bs.and_gate("y", "a[0]", "a[1]")
        bs.add_output_register(0x20, ["y"])
        board = SimulatedPamette(bs)
        assert board.peek(0x20) == 0
        board.poke(0x10, 0b11)
        assert board.peek(0x20) == 1
        board.poke(0x10, 0b01)
        assert board.peek(0x20) == 0

    def test_combinational_loop_rejected(self):
        bs = Bitstream("loop")
        bs.add_lut("a", ["b"], 0b01)
        bs.add_lut("b", ["a"], 0b01)
        with pytest.raises(ConfigurationError):
            SimulatedPamette(bs)

    def test_undriven_signal_rejected(self):
        bs = Bitstream("dangling")
        bs.add_lut("y", ["ghost"], 0b01)
        with pytest.raises(ConfigurationError):
            SimulatedPamette(bs)

    def test_duplicate_driver_rejected(self):
        bs = Bitstream("dup")
        bs.add_input("x")
        with pytest.raises(ConfigurationError):
            bs.add_lut("x", [], 0)

    def test_lut_width_enforced(self):
        bs = Bitstream("wide")
        for name in "abcde":
            bs.add_input(name)
        with pytest.raises(ConfigurationError):
            bs.add_lut("y", list("abcde"), 0)

    def test_peek_unknown_register(self):
        board = SimulatedPamette(counter_bitstream(2))
        with pytest.raises(HardwareStubError):
            board.peek(0x99)
        with pytest.raises(HardwareStubError):
            board.poke(0x0, 1)      # counter reg is read-only


class TestDevices:
    def test_timer_fires_periodically(self):
        timer = TimerDevice(period=10)
        timer.poke(REG_CONTROL, 1)
        records = timer.run_for(35)
        assert [r.tick for r in records] == [10, 20, 30]
        assert timer.peek(REG_STATUS) == 3

    def test_timer_disabled_by_default(self):
        timer = TimerDevice(period=5)
        assert timer.run_for(20) == []

    def test_uart_loopback_latency(self):
        uart = UartDevice(divisor=4)        # 40 ticks per byte
        uart.poke(REG_DATA, 0x55)
        records = uart.run_for(100)
        assert len(records) == 1
        assert records[0].tick == 40
        assert records[0].payload == 0x55
        assert uart.peek(REG_STATUS) == 1
        assert uart.peek(REG_DATA) == 0x55
        assert uart.peek(REG_STATUS) == 0

    def test_uart_fifo_order(self):
        uart = UartDevice(divisor=1)
        for b in [1, 2, 3]:
            uart.poke(REG_DATA, b)
        uart.run_for(100)
        assert [uart.peek(REG_DATA) for __ in range(3)] == [1, 2, 3]


class TestHardwareComponent:
    def test_timer_interrupts_reach_simulation(self):
        sim = Simulator()
        timer = TimerDevice(clock_hz=1e6, period=100)   # fires every 100us
        timer.poke(REG_CONTROL, 1)
        hw = HardwareComponent("hw", timer, window=250e-6, lifetime=1e-3,
                               irq_lines=["timer"])
        got = []

        def listener(comp):
            while True:
                t, v = yield Receive("in")
                got.append((round(t * 1e6), v))

        lst = FunctionComponent("lst", listener, ports={"in": "in"})
        sim.add(hw)
        sim.add(lst)
        sim.wire("irq", hw.port("timer"), lst.port("in"))
        sim.run()
        assert [t for t, __ in got] == [100, 200, 300, 400, 500,
                                        600, 700, 800, 900, 1000]

    def test_pokes_cross_mmio_port(self):
        sim = Simulator()
        timer = TimerDevice(clock_hz=1e6, period=50)
        hw = HardwareComponent("hw", timer, window=100e-6, lifetime=1e-3,
                               irq_lines=["timer"])

        def enabler(comp):
            yield Send("out", (REG_CONTROL, 1))   # enable at t=0

        en = FunctionComponent("en", enabler, ports={"out": "out"})

        def sinkhole(comp):
            while True:
                yield Receive("in")

        sink = FunctionComponent("sink", sinkhole, ports={"in": "in"})
        sim.add(hw)
        sim.add(en)
        sim.add(sink)
        sim.wire("mmio", en.port("out"), hw.port("mmio"))
        sim.wire("irq", hw.port("timer"), sink.port("in"))
        sim.run()
        assert hw.pokes_applied == 1
        assert hw.interrupts_raised > 0

    def test_unknown_irq_line_raises(self):
        sim = Simulator()
        timer = TimerDevice(period=10)
        timer.poke(REG_CONTROL, 1)
        hw = HardwareComponent("hw", timer, window=1e-4, lifetime=1e-3,
                               irq_lines=[])    # "timer" not wired
        sim.add(hw)
        with pytest.raises(HardwareStubError):
            sim.run()

    def test_checkpoint_restore_replays_hw_responses(self):
        sim = Simulator()
        timer = TimerDevice(clock_hz=1e6, period=100)
        timer.poke(REG_CONTROL, 1)
        hw = HardwareComponent("hw", timer, window=250e-6, lifetime=1e-3,
                               irq_lines=["timer"])

        class Collector(FunctionComponent):
            pass

        def listener(comp):
            comp.got = []
            while True:
                t, v = yield Receive("in")
                comp.got.append(round(t * 1e6))

        lst = FunctionComponent("lst", listener, ports={"in": "in"})
        sim.add(hw)
        sim.add(lst)
        sim.wire("irq", hw.port("timer"), lst.port("in"))
        sim.run(until=500e-6)
        cid = sim.checkpoint()
        sim.run()
        full = list(lst.got)
        sim.restore(cid)
        assert lst.got == [100, 200, 300, 400, 500]
        sim.run()
        assert lst.got == full


class TestRemoteHardware:
    def _system(self):
        from repro.distributed import CoSimulation
        cosim = CoSimulation()
        lab = cosim.add_node("lab")           # hardware host
        desk = cosim.add_node("desk")         # designer's host
        server = RemoteHardwareServer(lab)
        timer = TimerDevice(clock_hz=1e6, period=100)
        timer.poke(REG_CONTROL, 1)
        server.attach("timer0", timer)
        return cosim, lab, desk, server

    def test_client_proxies_full_contract(self):
        cosim, lab, desk, server = self._system()
        client = RemoteHardwareClient(desk, "lab", "timer0")
        assert client.remote_type == "TimerDevice"
        assert client.clock_hz == 1e6
        client.set_time(0)
        records = client.run_for(250)
        assert [r.tick for r in records] == [100, 200]
        assert client.peek(REG_STATUS) == 2
        client.stall()
        assert client.run_for(100) == []
        client.resume()
        assert server.calls_served > 4

    def test_unknown_hardware_name(self):
        cosim, lab, desk, server = self._system()
        with pytest.raises(Exception):
            RemoteHardwareClient(desk, "lab", "ghost")

    def test_remote_hardware_in_cosimulation(self):
        """Fig. 1's 'remote hardware connection': a hardware component on
        one node drives a stub served by another node."""
        cosim, lab, desk, server = self._system()
        ss = cosim.add_subsystem(desk, "design")
        client = RemoteHardwareClient(desk, "lab", "timer0")
        hw = HardwareComponent("hw", client, window=250e-6, lifetime=1e-3,
                               irq_lines=["timer"])

        def listener(comp):
            comp.got = []
            while True:
                t, v = yield Receive("in")
                comp.got.append(round(t * 1e6))

        lst = FunctionComponent("lst", listener, ports={"in": "in"})
        ss.add(hw)
        ss.add(lst)
        ss.wire("irq", hw.port("timer"), lst.port("in"))
        cosim.run()
        assert lst.got[:3] == [100, 200, 300]
        # every hardware interaction crossed the transport
        acct = cosim.transport.accounting
        assert acct.links[("desk", "lab")].messages > 0

    def test_duplicate_attach_rejected(self):
        cosim, lab, desk, server = self._system()
        with pytest.raises(HardwareStubError):
            server.attach("timer0", TimerDevice())
