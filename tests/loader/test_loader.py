"""The dynamic class loader."""

import textwrap

import pytest

from repro.core import LoaderError, ReactiveComponent
from repro.loader import ComponentLoader

SOURCE_V1 = textwrap.dedent("""
    from repro.core import ReactiveComponent

    class Blinker(ReactiveComponent):
        VERSION = 1
""")

SOURCE_V2 = SOURCE_V1.replace("VERSION = 1", "VERSION = 2")


@pytest.fixture
def component_file(tmp_path):
    path = tmp_path / "blinker.py"
    path.write_text(SOURCE_V1)
    return path


class TestFileLoading:
    def test_load_from_path(self, component_file):
        loader = ComponentLoader()
        cls = loader.load(f"{component_file}:Blinker")
        assert cls.VERSION == 1
        assert issubclass(cls, ReactiveComponent)

    def test_load_from_file_url(self, component_file):
        loader = ComponentLoader()
        cls = loader.load(f"file://{component_file}:Blinker")
        assert cls.VERSION == 1

    def test_search_paths(self, component_file):
        loader = ComponentLoader(search_paths=[str(component_file.parent)])
        cls = loader.load("blinker.py:Blinker")
        assert cls.VERSION == 1

    def test_cache_hit_on_unchanged_file(self, component_file):
        loader = ComponentLoader()
        spec = f"{component_file}:Blinker"
        first = loader.load(spec)
        second = loader.load(spec)
        assert first is second
        assert loader.cache_hits == 1

    def test_reload_after_edit_without_restart(self, component_file):
        """The paper's headline feature: recompile and reload a component
        without restarting the simulator."""
        import os
        loader = ComponentLoader()
        spec = f"{component_file}:Blinker"
        assert loader.load(spec).VERSION == 1
        component_file.write_text(SOURCE_V2)
        os.utime(component_file, (1e9, 2e9))   # force a new mtime
        assert loader.load(spec).VERSION == 2

    def test_invalidate(self, component_file):
        loader = ComponentLoader()
        spec = f"{component_file}:Blinker"
        loader.load(spec)
        loader.invalidate()
        loader.load(spec)
        assert loader.cache_hits == 0

    def test_instantiate(self, component_file):
        loader = ComponentLoader()
        instance = loader.instantiate(f"{component_file}:Blinker", "b1")
        assert instance.name == "b1"

    def test_missing_class(self, component_file):
        loader = ComponentLoader()
        with pytest.raises(LoaderError):
            loader.load(f"{component_file}:Ghost")

    def test_missing_file(self, tmp_path):
        loader = ComponentLoader(search_paths=[str(tmp_path)])
        with pytest.raises(LoaderError):
            loader.load("nothere.py:X")

    def test_broken_source(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("this is not python ]][")
        with pytest.raises(LoaderError):
            ComponentLoader().load(f"{path}:X")

    def test_non_component_rejected(self, tmp_path):
        path = tmp_path / "notcomp.py"
        path.write_text("class Thing:\n    pass\n")
        with pytest.raises(LoaderError):
            ComponentLoader().load(f"{path}:Thing")
        cls = ComponentLoader(require_component=False).load(f"{path}:Thing")
        assert cls.__name__ == "Thing"


class TestModuleFallback:
    def test_builtin_loader_fallback(self):
        loader = ComponentLoader()
        cls = loader.load("repro.core.component:ReactiveComponent")
        assert cls is ReactiveComponent

    def test_unknown_module(self):
        with pytest.raises(LoaderError):
            ComponentLoader().load("no.such.module:X")

    def test_unknown_class_in_module(self):
        with pytest.raises(LoaderError):
            ComponentLoader().load("repro.core.component:Ghost")


class TestSpecs:
    @pytest.mark.parametrize("bad", ["nocolon", ":Leading", "trail:",
                                     "mod:not a name"])
    def test_bad_specs(self, bad):
        with pytest.raises(LoaderError):
            ComponentLoader().load(bad)
