"""Timeline export: Chrome-trace shape, views, validation, attribution."""

import json

import pytest

from repro.observability import (
    RunReport,
    TraceKind,
    chrome_trace,
    stall_attribution,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.observability.export import subject_nodes, trace_records
from repro.observability.trace import TraceRecord

NODES = {"hub": "n-hub", "w0": "n-w0"}


def dispatch(subject, time, cause=None, hop=None, wall=0.0):
    rec = {"kind": TraceKind.DISPATCH, "seq": 1, "time": time,
           "subject": subject, "wall": wall}
    if cause is not None:
        rec["cause"] = cause
        rec["hop"] = hop or 0
    return rec


def send(subject, time, span, wall=0.0):
    return {"kind": TraceKind.MSG_SEND, "seq": 2, "time": time,
            "subject": subject, "span": span, "message_kind": "signal",
            "wall": wall}


def recv(subject, time, span, wall=0.0):
    return {"kind": TraceKind.MSG_RECV, "seq": 3, "time": time,
            "subject": subject, "span": span, "message_kind": "signal",
            "wall": wall}


class TestTraceRecordsNormalisation:
    def test_accepts_record_objects_and_keeps_wall(self):
        records = trace_records(
            [TraceRecord(1, TraceKind.DISPATCH, 0.5, "ss", wall=9.0)])
        assert records[0]["subject"] == "ss"
        assert records[0]["wall"] == 9.0

    def test_prefers_report_trace_records(self):
        report = RunReport("t")
        report.trace_records = [dispatch("ss", 1.0)]
        assert trace_records(report) == [dispatch("ss", 1.0)]

    def test_subject_nodes_from_report_rows(self):
        report = RunReport("t")
        report.subsystems = [{"name": "hub", "node": "n-hub"},
                             {"name": "solo", "node": "-"}]
        assert subject_nodes(report) == {"hub": "n-hub"}


class TestChromeTrace:
    def test_nodes_become_processes_subsystems_threads(self):
        doc = chrome_trace([dispatch("hub", 1.0), dispatch("w0", 2.0)],
                           nodes=NODES)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {(e["name"], e["args"]["name"]) for e in meta}
        assert ("process_name", "n-hub") in names
        assert ("process_name", "n-w0") in names
        assert ("thread_name", "hub") in names

    def test_virtual_view_scales_to_microseconds(self):
        doc = chrome_trace([dispatch("hub", 1.5)], nodes=NODES)
        event = [e for e in doc["traceEvents"] if e["ph"] == "i"][0]
        assert event["ts"] == pytest.approx(1.5e6)

    def test_wall_view_zero_bases_wall_clocks(self):
        doc = chrome_trace([dispatch("hub", 1.0, wall=100.0),
                            dispatch("hub", 2.0, wall=100.5)],
                           view="wall", nodes=NODES)
        stamps = sorted(e["ts"] for e in doc["traceEvents"]
                        if e["ph"] == "i")
        assert stamps == [pytest.approx(0.0), pytest.approx(0.5e6)]

    def test_send_recv_pair_produces_flow_arrow(self):
        doc = chrome_trace([send("n-hub->n-w0", 1.0, "n-hub:1"),
                            recv("n-hub->n-w0", 1.5, "n-hub:1")])
        flows = [e for e in doc["traceEvents"] if e["ph"] in "sf"]
        assert [e["ph"] for e in flows] == ["s", "f"]
        assert flows[0]["id"] == flows[1]["id"] == "n-hub:1"
        # The send sits on the src node's process, the recv on the dst's.
        pids = {e["ph"]: e["pid"] for e in flows}
        assert pids["s"] != pids["f"]

    def test_stall_becomes_duration_slice_in_virtual_view(self):
        record = {"kind": TraceKind.STALL, "seq": 4, "time": 2.0,
                  "subject": "hub", "next_event": 5.0, "wall": 0.0}
        doc = chrome_trace([record], nodes=NODES)
        slice_ = [e for e in doc["traceEvents"] if e["ph"] == "X"][0]
        assert slice_["dur"] == pytest.approx(3.0e6)

    def test_invalid_view_rejected(self):
        with pytest.raises(ValueError):
            chrome_trace([], view="sideways")

    def test_exported_document_validates(self):
        doc = chrome_trace([send("n-hub->n-w0", 1.0, "n-hub:1"),
                            recv("n-hub->n-w0", 1.5, "n-hub:1"),
                            dispatch("w0", 1.5, cause="n-hub:1", hop=1)],
                           nodes=NODES)
        assert validate_chrome_trace(doc) == []

    def test_write_round_trips_as_json(self, tmp_path):
        path = tmp_path / "trace.json"
        document = write_chrome_trace(str(path),
                                      [dispatch("hub", 1.0)], nodes=NODES)
        assert json.loads(path.read_text()) == document


class TestValidate:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"events": []}) != []

    def test_flags_bad_phase_and_missing_fields(self):
        doc = {"traceEvents": [
            {"ph": "Z", "pid": 1, "tid": 1, "ts": 0},
            {"ph": "i", "tid": 1, "ts": 0},
            {"ph": "X", "pid": 1, "tid": 1, "ts": 0},
        ]}
        problems = validate_chrome_trace(doc)
        assert any("bad ph" in p for p in problems)
        assert any("missing integer pid" in p for p in problems)
        assert any("needs dur" in p for p in problems)

    def test_flags_orphaned_flow_finish(self):
        doc = {"traceEvents": [
            {"ph": "f", "bp": "e", "id": "ghost", "pid": 1, "tid": 1,
             "ts": 0.0},
        ]}
        problems = validate_chrome_trace(doc)
        assert any("orphaned causal link" in p for p in problems)

    def test_clean_document_passes(self):
        doc = {"traceEvents": [
            {"ph": "M", "name": "process_name", "pid": 1, "tid": 0,
             "args": {"name": "n"}},
            {"ph": "s", "id": "x", "pid": 1, "tid": 1, "ts": 0.0},
            {"ph": "f", "bp": "e", "id": "x", "pid": 2, "tid": 1,
             "ts": 1.0},
        ]}
        assert validate_chrome_trace(doc) == []


class TestStallAttribution:
    def test_remote_caused_gap_charged_to_peer_origin(self):
        rows = stall_attribution([
            dispatch("hub", 1.0),
            dispatch("hub", 4.0, cause="n-w0:1", hop=1),
        ], nodes=NODES)
        assert rows == [{"subsystem": "hub", "node": "n-hub",
                         "peer_node": "n-w0", "waits": 1, "waited": 3.0,
                         "critical": True}]

    def test_local_and_own_node_causes_not_charged(self):
        rows = stall_attribution([
            dispatch("hub", 1.0),
            dispatch("hub", 4.0),                          # local event
            dispatch("hub", 9.0, cause="n-hub:1", hop=1),  # own node
        ], nodes=NODES)
        assert rows == []

    def test_critical_flag_marks_worst_peer_per_subsystem(self):
        rows = stall_attribution([
            dispatch("hub", 1.0, cause="n-w0:1", hop=1),
            dispatch("hub", 6.0, cause="n-w1:1", hop=1),
        ], nodes=NODES)
        by_peer = {row["peer_node"]: row for row in rows}
        assert by_peer["n-w1"]["critical"] is True
        assert by_peer["n-w0"]["critical"] is False

    def test_same_instant_arrivals_share_blame_order_invariantly(self):
        forward = [
            dispatch("hub", 1.0),
            dispatch("hub", 4.0, cause="n-w1:1", hop=1),
            dispatch("hub", 4.0, cause="n-w0:1", hop=1),
        ]
        swapped = [forward[0], forward[2], forward[1]]
        expected = [{"subsystem": "hub", "node": "n-hub",
                     "peer_node": "n-w0", "waits": 1, "waited": 3.0,
                     "critical": True},
                    {"subsystem": "hub", "node": "n-hub",
                     "peer_node": "n-w1", "waits": 1, "waited": 3.0,
                     "critical": True}]
        assert stall_attribution(forward, nodes=NODES) == expected
        assert stall_attribution(swapped, nodes=NODES) == expected

    def test_inherited_cause_at_later_instant_not_charged(self):
        # The span's message was stamped 1.0; the dispatch at 2.5 is
        # follow-on work the subsystem scheduled for itself, not a stall.
        rows = stall_attribution([
            send("n-w0->n-hub", 1.0, "n-w0:1"),
            dispatch("hub", 1.0, cause="n-w0:1", hop=1),
            dispatch("hub", 2.5, cause="n-w0:1", hop=1),
        ], nodes=NODES)
        assert rows == [{"subsystem": "hub", "node": "n-hub",
                         "peer_node": "n-w0", "waits": 1, "waited": 1.0,
                         "critical": True}]

    def test_first_dispatch_gap_measured_from_time_zero(self):
        rows = stall_attribution(
            [dispatch("hub", 2.0, cause="n-w0:1", hop=1)], nodes=NODES)
        assert rows[0]["waited"] == 2.0

    def test_unknown_subsystem_still_attributed(self):
        rows = stall_attribution(
            [dispatch("mystery", 1.0, cause="n-w0:1", hop=1)], nodes={})
        assert rows[0]["node"] == "-"
        assert rows[0]["peer_node"] == "n-w0"


class TestCounterTracks:
    SERIES = {"n-hub/scheduler.dispatched": {"points": [[1.0, 10],
                                                        [2.0, 25]]},
              "wire.out": {"points": [[1.5, 3], [2.5, "oops"],
                                      [3.0, True]]}}

    def test_series_param_adds_counter_events(self):
        document = chrome_trace([dispatch("hub", 1.0)],
                                series=self.SERIES)
        counters = [e for e in document["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == 3  # non-numeric and bool points skipped
        assert all(e["cat"] == "series" for e in counters)
        assert validate_chrome_trace(document) == []

    def test_node_prefixed_series_lands_on_that_process_row(self):
        document = chrome_trace([dispatch("hub", 1.0)],
                                series=self.SERIES)
        events = document["traceEvents"]
        by_label = {}
        for event in events:
            if event["ph"] == "C":
                by_label.setdefault(event["name"], event)
        assert by_label["scheduler.dispatched"]["args"] \
            == {"scheduler.dispatched": 10}
        hub_pid = next(e["pid"] for e in events
                       if e.get("ph") == "M"
                       and e.get("args", {}).get("name") == "n-hub")
        assert by_label["scheduler.dispatched"]["pid"] == hub_pid
        assert by_label["wire.out"]["ts"] == pytest.approx(1.5e6)

    def test_report_timeseries_picked_up_automatically(self):
        report = RunReport("r")
        report.trace_records = [dispatch("hub", 1.0)]
        report.timeseries = {"m": {"points": [[0.5, 7]]}}
        document = chrome_trace(report)
        counters = [e for e in document["traceEvents"] if e["ph"] == "C"]
        assert counters and counters[0]["args"] == {"m": 7}

    def test_wall_view_omits_counter_tracks(self):
        document = chrome_trace([dispatch("hub", 1.0, wall=5.0)],
                                view="wall", series=self.SERIES)
        assert not [e for e in document["traceEvents"]
                    if e["ph"] == "C"]


class TestValidateCounters:
    def _counter(self, **overrides):
        event = {"ph": "C", "cat": "series", "name": "m", "pid": 1,
                 "tid": 0, "ts": 0.0, "args": {"m": 1}}
        event.update(overrides)
        return event

    def test_clean_counter_event_passes(self):
        document = {"traceEvents": [self._counter()]}
        assert validate_chrome_trace(document) == []

    def test_counter_without_name_flagged(self):
        document = {"traceEvents": [self._counter(name="")]}
        assert any("without name" in p
                   for p in validate_chrome_trace(document))

    def test_counter_with_empty_args_flagged(self):
        document = {"traceEvents": [self._counter(args={})]}
        assert any("non-empty args" in p
                   for p in validate_chrome_trace(document))

    def test_counter_with_non_numeric_args_flagged(self):
        for bad in ({"m": "high"}, {"m": True}, {"m": None}):
            document = {"traceEvents": [self._counter(args=bad)]}
            assert any("numeric" in p
                       for p in validate_chrome_trace(document)), bad
