"""The flight recorder: ring semantics, stride sampling, dumps, and the
always-on hook in the scheduler run loops."""

import json

from repro.core.events import Event, EventKind
from repro.core.subsystem import Subsystem
from repro.core.timestamp import Timestamp
from repro.observability import NULL_TELEMETRY, Telemetry
from repro.observability.flight import (
    ENV_DIR,
    STRIDE,
    FlightRecorder,
    flight_path,
)


class TestRecorder:
    def test_note_round_trips(self):
        flight = FlightRecorder()
        flight.note("stall", "engine", time=4.5, horizon=4.0)
        record, = flight.records()
        assert record["code"] == "stall"
        assert record["subject"] == "engine"
        assert record["time"] == 4.5
        assert record["details"] == {"horizon": 4.0}
        assert record["wall"] > 0

    def test_disabled_recorder_is_a_noop(self):
        flight = FlightRecorder(enabled=False)
        flight.note("stall", "engine")
        assert len(flight) == 0
        assert flight.recorded == 0
        assert flight.dump(tag="t") is None

    def test_ring_keeps_only_the_tail(self):
        flight = FlightRecorder(capacity=4)
        for n in range(10):
            flight.note("dispatch", f"s{n}")
        assert flight.recorded == 10
        assert [r["subject"] for r in flight.records()] \
            == ["s6", "s7", "s8", "s9"]

    def test_tick_dispatch_samples_every_stride(self):
        flight = FlightRecorder()
        for n in range(2 * STRIDE + 5):
            flight.tick_dispatch("ss", float(n))
        assert flight.dispatch_seq == 2 * STRIDE + 5
        seqs = [r["details"]["seq"] for r in flight.records()]
        assert seqs == [STRIDE, 2 * STRIDE]

    def test_clear_resets_everything(self):
        flight = FlightRecorder()
        flight.note("x")
        flight.tick_dispatch("ss", 0.0)
        flight.clear()
        assert len(flight) == 0
        assert flight.recorded == 0
        assert flight.dispatch_seq == 0


class TestDump:
    def test_dumps_is_jsonl_with_header(self):
        flight = FlightRecorder()
        flight.note("stall", "engine", time=1.0)
        lines = flight.dumps(tag="worker", reason="test").splitlines()
        header = json.loads(lines[0])
        assert header["flight"] == "worker"
        assert header["reason"] == "test"
        assert header["recorded"] == 1
        assert json.loads(lines[1])["code"] == "stall"

    def test_dump_writes_to_env_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_DIR, str(tmp_path))
        flight = FlightRecorder()
        flight.note("crash", "n-w0")
        path = flight.dump(tag="n-w0", reason="boom")
        assert path is not None
        assert path.startswith(str(tmp_path))
        first = json.loads(open(path, encoding="utf-8").readline())
        assert first["reason"] == "boom"

    def test_dump_failure_returns_none(self, tmp_path):
        flight = FlightRecorder()
        flight.note("x")
        assert flight.dump(str(tmp_path / "no" / "such" / "dir" / "f")) \
            is None

    def test_flight_path_sanitises_tags(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_DIR, str(tmp_path))
        path = flight_path("n/hub:0")
        assert path.startswith(str(tmp_path))
        assert "pia-flight-n_hub_0-" in path


class TestSchedulerHook:
    def _run(self, telemetry, events=2 * STRIDE + 100):
        subsystem = Subsystem("hot")
        subsystem.attach_telemetry(telemetry)
        scheduler = subsystem.scheduler
        remaining = events
        clock = 0.0

        def tick(event):
            nonlocal remaining, clock
            remaining -= 1
            clock += 1.0
            if remaining > 0:
                scheduler.schedule(Event(Timestamp(clock),
                                         EventKind.CONTROL, tick))

        scheduler.schedule(Event(Timestamp(0.0), EventKind.CONTROL, tick))
        scheduler.run()
        return subsystem

    def test_run_loop_stride_samples_into_the_flight_ring(self):
        telemetry = Telemetry()
        self._run(telemetry)
        flight = telemetry.flight
        assert flight.dispatch_seq == 2 * STRIDE + 100
        seqs = [r["details"]["seq"] for r in flight.records()
                if r["code"] == "dispatch"]
        assert seqs == [STRIDE, 2 * STRIDE]

    def test_flight_stays_on_with_metrics_gate_disabled(self):
        telemetry = Telemetry()
        telemetry.disable()
        self._run(telemetry)
        assert telemetry.flight.dispatch_seq == 2 * STRIDE + 100
        assert len(telemetry.flight) == 2

    def test_null_telemetry_flight_is_dark(self):
        before = NULL_TELEMETRY.flight.dispatch_seq
        self._run(NULL_TELEMETRY)
        assert NULL_TELEMETRY.flight.dispatch_seq == before
        assert len(NULL_TELEMETRY.flight) == 0

    def test_reset_clears_the_ring(self):
        telemetry = Telemetry()
        self._run(telemetry)
        telemetry.reset()
        assert len(telemetry.flight) == 0
        assert telemetry.flight.dispatch_seq == 0
