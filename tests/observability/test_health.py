"""Per-link health: monitor math, report-time scoring, and the advisory
recommendation — plus the bit-identity guarantee that attaching a monitor
never perturbs the deterministic report projection."""

import pytest

from repro.bench.workloads import streaming_pair
from repro.observability import (
    LinkHealthMonitor,
    Telemetry,
    attach_health,
    finalize_health,
)
from repro.observability.health import STALL_OPTIMISTIC_THRESHOLD


class TestMonitor:
    @pytest.mark.parametrize("alpha", [0.0, -0.2, 1.5])
    def test_alpha_outside_unit_interval_rejected(self, alpha):
        with pytest.raises(ValueError):
            LinkHealthMonitor(alpha=alpha)

    def test_send_boundary_updates_ewma_and_rate(self):
        monitor = LinkHealthMonitor(alpha=0.2)
        monitor.on_send("a", "b", 100, 4, 2.0, wall=10.0)
        monitor.on_send("a", "b", 50, 1, 1.0, wall=11.0)
        row, = monitor.rows()
        assert (row["src"], row["dst"]) == ("a", "b")
        assert row["messages"] == 5
        assert row["frames"] == 2
        assert row["bytes"] == 150
        assert row["delay"] == 3.0
        # per-message delays 0.5 then 1.0: 0.5 + 0.2*(1.0-0.5)
        assert row["ewma_delay"] == pytest.approx(0.6)
        # 5 messages over a 1s wall span
        assert row["rate"] == pytest.approx(5.0)

    def test_single_frame_has_no_span_and_zero_rate(self):
        monitor = LinkHealthMonitor()
        monitor.on_send("a", "b", 10, 1, 0.5, wall=3.0)
        row, = monitor.rows()
        assert row["rate"] == 0.0

    def test_poll_boundary_tracks_inbound_depth(self):
        monitor = LinkHealthMonitor(alpha=0.2)
        monitor.on_send("a", "b", 10, 1, 0.5, wall=0.0)
        monitor.on_poll("b", 3)
        monitor.on_poll("b", 1)
        row, = monitor.rows()
        # 0 -> 0.6 -> 0.6 + 0.2*(1-0.6)
        assert row["queue_depth"] == pytest.approx(0.68)
        assert row["queue_peak"] == 3

    def test_rows_sorted_by_directed_link(self):
        monitor = LinkHealthMonitor()
        monitor.on_send("b", "a", 1, 1, 0.1, wall=0.0)
        monitor.on_send("a", "b", 1, 1, 0.1, wall=0.0)
        assert [(r["src"], r["dst"]) for r in monitor.rows()] \
            == [("a", "b"), ("b", "a")]

    def test_reset_forgets_everything(self):
        monitor = LinkHealthMonitor()
        monitor.on_send("a", "b", 1, 1, 0.1, wall=0.0)
        monitor.on_poll("b", 2)
        monitor.reset()
        assert monitor.rows() == []


class TestFinalize:
    def _row(self, **overrides):
        row = {"src": "a", "dst": "b", "messages": 10, "frames": 10,
               "bytes": 100, "delay": 1.0, "ewma_delay": 0.0, "rate": 0.0,
               "queue_depth": 0.0, "queue_peak": 0}
        row.update(overrides)
        return row

    def test_quiet_link_scores_perfect_and_conservative(self):
        scored, = finalize_health([self._row()])
        assert scored["score"] == 1.0
        assert scored["stall_fraction"] == 0.0
        assert scored["recommendation"] == "conservative"

    def test_stalling_link_flips_to_optimistic(self):
        stalls = [{"subsystem": "con", "node": "b", "peer_node": "a",
                   "waited": 30.0, "waits": 3, "critical": True}]
        subsystems = [{"name": "con", "node": "b", "time": 100.0}]
        scored, = finalize_health([self._row()],
                                  stall_attribution=stalls,
                                  subsystems=subsystems)
        assert scored["stall_fraction"] == pytest.approx(0.3)
        assert scored["stall_fraction"] >= STALL_OPTIMISTIC_THRESHOLD
        assert scored["score"] == pytest.approx(1.0 - 0.6 * 0.3)
        assert scored["recommendation"] == "optimistic"

    def test_stall_fraction_clamps_at_one(self):
        stalls = [{"subsystem": "con", "node": "b", "peer_node": "a",
                   "waited": 500.0, "waits": 1, "critical": False}]
        subsystems = [{"name": "con", "node": "b", "time": 100.0}]
        scored, = finalize_health([self._row()],
                                  stall_attribution=stalls,
                                  subsystems=subsystems)
        assert scored["stall_fraction"] == 1.0
        assert scored["score"] == pytest.approx(0.4)

    def test_congested_queue_docks_a_quarter_weight(self):
        scored, = finalize_health([self._row(queue_depth=32.0)])
        # 32 of QUEUE_REF=64 -> queue term 0.5 -> dock 0.125
        assert scored["score"] == pytest.approx(0.875)

    def test_latency_dominance_is_relative_to_the_mean(self):
        slow, fast = finalize_health([
            self._row(ewma_delay=9.0),
            self._row(src="c", ewma_delay=1.0),
        ])
        # mean delay 5.0: terms 9/20 and 1/20, weight 0.15
        assert slow["score"] == pytest.approx(1.0 - 0.15 * 0.45)
        assert fast["score"] == pytest.approx(1.0 - 0.15 * 0.05)

    def test_no_span_means_zero_stall_fraction(self):
        stalls = [{"subsystem": "con", "node": "b", "peer_node": "a",
                   "waited": 30.0, "waits": 3, "critical": False}]
        scored, = finalize_health([self._row()], stall_attribution=stalls)
        assert scored["stall_fraction"] == 0.0


class TestAttachAndReport:
    def test_attach_health_wires_transport_and_telemetry(self):
        class FakeTransport:
            def attach_health(self, monitor):
                self.monitor = monitor

        transport = FakeTransport()
        telemetry = Telemetry()
        monitor = attach_health(transport, telemetry)
        assert transport.monitor is monitor
        assert telemetry.health is monitor
        telemetry.reset()
        assert monitor.rows() == []

    def test_cosim_run_reports_scored_rows(self):
        cosim = streaming_pair(30, 1.0)
        attach_health(cosim.transport, cosim.telemetry)
        cosim.run()
        report = cosim.report()
        assert report.link_health
        row = report.link_health[0]
        assert row["messages"] > 0
        assert row["recommendation"] in ("conservative", "optimistic")
        assert 0.0 <= row["score"] <= 1.0
        assert "link health" in report.render()

    def test_monitor_never_perturbs_the_deterministic_projection(self):
        plain = streaming_pair(30, 1.0)
        plain.run()
        monitored = streaming_pair(30, 1.0)
        attach_health(monitored.transport, monitored.telemetry)
        monitored.run()
        assert monitored.report().to_dict() == plain.report().to_dict()
        assert "link_health" not in monitored.report().to_dict()
        document = monitored.report().to_dict(include_health=True)
        assert document["link_health"] == monitored.report().link_health
