"""Live introspection: status snapshots and the console view over them."""

import io
import json
import threading
import time

from repro.distributed.multiprocess import status_snapshot
from repro.observability.live import (
    follow,
    follow_ndjson,
    main,
    read_snapshot,
    render_status,
)

WORKER_STATUS = {
    "node": "n-w0",
    "idle": False,
    "rounds": 12,
    "pending": 1,
    "wire_out": 5,
    "wire_in": 4,
    "wall": 0.0,
    "subsystems": [{
        "name": "w0", "time": 3.5, "next_event": 4.0, "dispatched": 7,
        "stalls": 2, "queue_depth": 1, "horizon": float("inf"),
        "stalled": False, "waiting_on": "hub@n-hub",
    }],
}


class TestStatusSnapshot:
    def test_json_safe_and_complete(self):
        snapshot = status_snapshot({"n-w0": WORKER_STATUS}, until=10.0)
        json.dumps(snapshot)    # must not choke on inf
        node = snapshot["nodes"]["n-w0"]
        row = node["subsystems"][0]
        assert snapshot["phase"] == "running"
        assert snapshot["until"] == 10.0
        assert snapshot["global_time"] == 3.5
        assert row["horizon"] is None           # inf -> null
        assert row["waiting_on"] == "hub@n-hub"
        assert node["heartbeat_age"] >= 0.0

    def test_infinite_until_is_null(self):
        snapshot = status_snapshot({"n-w0": WORKER_STATUS})
        assert snapshot["until"] is None

    def test_done_phase_carried_through(self):
        snapshot = status_snapshot({}, phase="done")
        assert snapshot["phase"] == "done"
        assert snapshot["global_time"] == 0.0


class TestRenderStatus:
    def test_view_includes_every_field_a_human_needs(self):
        snapshot = status_snapshot({"n-w0": WORKER_STATUS}, until=10.0)
        view = render_status(snapshot)
        assert "phase=running" in view
        assert "node n-w0" in view
        assert "busy" in view
        assert "hub@n-hub" in view
        assert "w0" in view

    def test_infinite_values_render_as_dash(self):
        snapshot = status_snapshot({"n-w0": WORKER_STATUS})
        view = render_status(snapshot)
        assert "until=-" in view


class TestFileTailing:
    def write(self, path, snapshot):
        path.write_text(json.dumps(snapshot))

    def test_read_snapshot_missing_or_torn_is_none(self, tmp_path):
        assert read_snapshot(str(tmp_path / "missing.json")) is None
        torn = tmp_path / "torn.json"
        torn.write_text('{"phase": "runn')
        assert read_snapshot(str(torn)) is None

    def test_follow_stops_on_done_phase(self, tmp_path):
        path = tmp_path / "status.json"
        self.write(path, status_snapshot({"n-w0": WORKER_STATUS},
                                         phase="done"))
        out = io.StringIO()
        last = follow(str(path), interval=0.01, out=out)
        assert last["phase"] == "done"
        assert "phase=done" in out.getvalue()

    def test_follow_respects_iteration_budget(self, tmp_path):
        path = tmp_path / "status.json"
        self.write(path, status_snapshot({"n-w0": WORKER_STATUS}))
        out = io.StringIO()
        follow(str(path), interval=0.01, iterations=2, out=out)
        assert out.getvalue().count("phase=running") == 2

    def test_main_once_mode(self, tmp_path, capsys):
        path = tmp_path / "status.json"
        self.write(path, status_snapshot({"n-w0": WORKER_STATUS}))
        assert main(["--once", str(path)]) == 0
        assert "node n-w0" in capsys.readouterr().out

    def test_main_once_without_file_fails(self, tmp_path, capsys):
        assert main(["--once", str(tmp_path / "none.json")]) == 1
        assert "no status snapshot" in capsys.readouterr().err

    def test_follow_ndjson_emits_compact_lines(self, tmp_path):
        path = tmp_path / "status.json"
        self.write(path, status_snapshot({"n-w0": WORKER_STATUS},
                                         phase="done"))
        out = io.StringIO()
        last = follow_ndjson(str(path), interval=0.01, out=out)
        lines = out.getvalue().splitlines()
        assert len(lines) == 1
        document = json.loads(lines[0])
        assert document == last
        assert document["phase"] == "done"
        assert "\n" not in lines[0].strip()
        # compact separators, not the pretty renderer
        assert ": " not in lines[0]

    def test_follow_ndjson_dedups_unchanged_snapshots(self, tmp_path):
        path = tmp_path / "status.json"
        first = status_snapshot({"n-w0": WORKER_STATUS})
        first["wall"] = 1.0
        self.write(path, first)

        def mutate():
            # same wall stamp: must not re-emit; then a new done snapshot.
            time.sleep(0.1)
            done = status_snapshot({"n-w0": WORKER_STATUS}, phase="done")
            done["wall"] = 2.0
            self.write(path, done)

        out = io.StringIO()
        mutator = threading.Thread(target=mutate)
        mutator.start()
        last = follow_ndjson(str(path), interval=0.01, out=out)
        mutator.join()
        lines = out.getvalue().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["phase"] == "running"
        assert last["phase"] == "done"

    def test_follow_ndjson_respects_iteration_budget(self, tmp_path):
        path = tmp_path / "status.json"
        self.write(path, status_snapshot({"n-w0": WORKER_STATUS}))
        out = io.StringIO()
        last = follow_ndjson(str(path), interval=0.01, iterations=1,
                             out=out)
        assert last["phase"] == "running"
        assert len(out.getvalue().splitlines()) == 1

    def test_main_follow_mode(self, tmp_path, capsys):
        path = tmp_path / "status.json"
        self.write(path, status_snapshot({"n-w0": WORKER_STATUS},
                                         phase="done"))
        assert main(["--follow", "--interval", "0.01", str(path)]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["phase"] == "done"
