"""Cross-process telemetry merging: the rules each metric kind follows."""

from repro.observability import (
    merge_counters,
    merge_gauges,
    merge_histograms,
    merge_link_rows,
    merge_timings,
    merge_trace_records,
)


class TestCounters:
    def test_sums_and_creates(self):
        into = {"a": 1}
        merge_counters(into, {"a": 2, "b": 5})
        assert into == {"a": 3, "b": 5}

    def test_returns_target(self):
        into = {}
        assert merge_counters(into, {"x": 1}) is into


class TestGauges:
    def test_keeps_maximum(self):
        into = {"rounds": 10.0, "depth": 3.0}
        merge_gauges(into, {"rounds": 7.0, "depth": 9.0, "new": 1.0})
        assert into == {"rounds": 10.0, "depth": 9.0, "new": 1.0}


class TestHistograms:
    def test_merges_mass_and_recomputes_mean(self):
        into = {"h": {"count": 2, "total": 10.0, "min": 2.0, "max": 8.0,
                      "mean": 5.0, "buckets": {"<=8": 2}}}
        merge_histograms(into, {"h": {"count": 2, "total": 2.0, "min": 0.5,
                                      "max": 1.5, "mean": 1.0,
                                      "buckets": {"<=2": 2}}})
        merged = into["h"]
        assert merged["count"] == 4
        assert merged["total"] == 12.0
        assert merged["min"] == 0.5
        assert merged["max"] == 8.0
        assert merged["mean"] == 3.0
        assert merged["buckets"] == {"<=8": 2, "<=2": 2}

    def test_new_histogram_is_deep_copied(self):
        source = {"h": {"count": 1, "total": 1.0, "min": 1.0, "max": 1.0,
                        "mean": 1.0, "buckets": {"<=1": 1}}}
        into = {}
        merge_histograms(into, source)
        into["h"]["buckets"]["<=1"] = 99
        assert source["h"]["buckets"]["<=1"] == 1

    def test_none_bounds_from_empty_histograms(self):
        into = {"h": {"count": 0, "total": 0.0, "min": None, "max": None,
                      "mean": None, "buckets": {}}}
        merge_histograms(into, {"h": {"count": 1, "total": 3.0, "min": 3.0,
                                      "max": 3.0, "mean": 3.0,
                                      "buckets": {"<=4": 1}}})
        assert into["h"]["min"] == 3.0
        assert into["h"]["max"] == 3.0
        assert into["h"]["mean"] == 3.0


class TestLinkRows:
    def test_merges_by_directed_link_and_sorts(self):
        rows = [
            {"src": "b", "dst": "a", "model": "same-host", "messages": 1,
             "bytes": 10, "delay": 0.1, "frames": 1},
            {"src": "a", "dst": "b", "model": "same-host", "messages": 2,
             "bytes": 20, "delay": 0.2, "frames": 2},
            {"src": "a", "dst": "b", "model": "same-host", "messages": 3,
             "bytes": 30, "delay": 0.3, "frames": 1},
        ]
        merged = merge_link_rows(rows)
        assert [(r["src"], r["dst"]) for r in merged] == \
            [("a", "b"), ("b", "a")]
        ab = merged[0]
        assert (ab["messages"], ab["bytes"], ab["frames"]) == (5, 50, 3)
        assert abs(ab["delay"] - 0.5) < 1e-12

    def test_missing_frames_falls_back_to_messages(self):
        rows = [
            {"src": "a", "dst": "b", "model": "m", "messages": 2,
             "bytes": 1, "delay": 0.0, "frames": 2},
            {"src": "a", "dst": "b", "model": "m", "messages": 4,
             "bytes": 1, "delay": 0.0},
        ]
        assert merge_link_rows(rows)[0]["frames"] == 6


class TestTimings:
    def test_sums_totals_and_counts(self):
        into = {"run": {"total_seconds": 1.0, "count": 2}}
        merge_timings(into, {"run": {"total_seconds": 0.5, "count": 1},
                             "idle": {"total_seconds": 3.0, "count": 4}})
        assert into["run"] == {"total_seconds": 1.5, "count": 3}
        assert into["idle"] == {"total_seconds": 3.0, "count": 4}


class TestTraceRecords:
    def test_interleaves_streams_in_time_node_seq_order(self):
        merged = merge_trace_records({
            "n2": [{"seq": 1, "kind": "dispatch", "time": 1.0, "subject": "b"},
                   {"seq": 2, "kind": "dispatch", "time": 3.0, "subject": "b"}],
            "n1": [{"seq": 1, "kind": "dispatch", "time": 2.0, "subject": "a"},
                   {"seq": 2, "kind": "dispatch", "time": 2.0, "subject": "a"}],
        })
        assert [(r["node"], r["time"], r["seq"]) for r in merged] == [
            ("n2", 1.0, 1), ("n1", 2.0, 1), ("n1", 2.0, 2), ("n2", 3.0, 2)]

    def test_tags_every_record_with_its_node(self):
        merged = merge_trace_records({"n1": [{"seq": 1, "time": 0.0}]})
        assert merged[0]["node"] == "n1"

    def test_same_time_orders_by_node_then_seq(self):
        merged = merge_trace_records({
            "b": [{"seq": 1, "time": 5.0}],
            "a": [{"seq": 9, "time": 5.0}],
        })
        assert [r["node"] for r in merged] == ["a", "b"]

    def test_preserves_existing_node_tag(self):
        merged = merge_trace_records(
            {"n1": [{"seq": 1, "time": 0.0, "node": "n1"}]})
        assert merged == [{"seq": 1, "time": 0.0, "node": "n1"}]
