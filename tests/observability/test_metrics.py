"""Unit tests for the metrics registry primitives."""

import pytest

from repro.observability import (
    Counter,
    Gauge,
    MetricError,
    MetricsRegistry,
    Timer,
)


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value == 0

    def test_inc_accumulates(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_monotonic_negative_increment_rejected(self):
        c = Counter("c")
        c.inc(3)
        with pytest.raises(MetricError):
            c.inc(-1)
        assert c.value == 3

    def test_monotonic_under_many_increments(self):
        c = Counter("c")
        previous = c.value
        for n in (0, 1, 2, 0, 7, 1):
            c.inc(n)
            assert c.value >= previous
            previous = c.value
        assert c.value == 11


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("g")
        g.set(10.0)
        g.add(-3.5)
        assert g.value == 6.5


class TestTimer:
    def test_context_manager_accumulates(self):
        t = Timer("t")
        with t:
            pass
        with t:
            pass
        assert t.count == 2
        assert t.total >= 0.0

    def test_add_external_measurement(self):
        t = Timer("t")
        t.add(1.5, blocks=3)
        assert t.count == 3
        assert t.total == 1.5


class TestRegistry:
    def test_counter_identity_by_name(self):
        reg = MetricsRegistry()
        a = reg.counter("x")
        b = reg.counter("x")
        assert a is b

    def test_snapshot_is_sorted_and_plain_data(self):
        reg = MetricsRegistry()
        reg.counter("zz").inc(2)
        reg.counter("aa").inc(1)
        reg.gauge("mid").set(3.0)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["aa", "zz"]
        assert snap["counters"]["zz"] == 2
        assert snap["gauges"]["mid"] == 3.0

    def test_reset_forgets_everything(self):
        reg = MetricsRegistry()
        reg.counter("x").inc(5)
        reg.gauge("g").set(2.0)
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {},
                                  "histograms": {}}
        assert reg.counter("x").value == 0

    def test_timings_reported_separately_from_snapshot(self):
        reg = MetricsRegistry()
        reg.timer("run").add(0.25, blocks=2)
        assert "run" not in reg.snapshot().get("counters", {})
        assert reg.timings() == {
            "run": {"total_seconds": 0.25, "count": 2}}
