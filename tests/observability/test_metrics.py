"""Unit tests for the metrics registry primitives."""

import pytest

from repro.observability import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    Timer,
    snapshot_quantile,
)


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value == 0

    def test_inc_accumulates(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_monotonic_negative_increment_rejected(self):
        c = Counter("c")
        c.inc(3)
        with pytest.raises(MetricError):
            c.inc(-1)
        assert c.value == 3

    def test_monotonic_under_many_increments(self):
        c = Counter("c")
        previous = c.value
        for n in (0, 1, 2, 0, 7, 1):
            c.inc(n)
            assert c.value >= previous
            previous = c.value
        assert c.value == 11


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("g")
        g.set(10.0)
        g.add(-3.5)
        assert g.value == 6.5


class TestTimer:
    def test_context_manager_accumulates(self):
        t = Timer("t")
        with t:
            pass
        with t:
            pass
        assert t.count == 2
        assert t.total >= 0.0

    def test_add_external_measurement(self):
        t = Timer("t")
        t.add(1.5, blocks=3)
        assert t.count == 3
        assert t.total == 1.5


class TestRegistry:
    def test_counter_identity_by_name(self):
        reg = MetricsRegistry()
        a = reg.counter("x")
        b = reg.counter("x")
        assert a is b

    def test_snapshot_is_sorted_and_plain_data(self):
        reg = MetricsRegistry()
        reg.counter("zz").inc(2)
        reg.counter("aa").inc(1)
        reg.gauge("mid").set(3.0)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["aa", "zz"]
        assert snap["counters"]["zz"] == 2
        assert snap["gauges"]["mid"] == 3.0

    def test_reset_forgets_everything(self):
        reg = MetricsRegistry()
        reg.counter("x").inc(5)
        reg.gauge("g").set(2.0)
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {},
                                  "histograms": {}}
        assert reg.counter("x").value == 0

    def test_timings_reported_separately_from_snapshot(self):
        reg = MetricsRegistry()
        reg.timer("run").add(0.25, blocks=2)
        assert "run" not in reg.snapshot().get("counters", {})
        assert reg.timings() == {
            "run": {"total_seconds": 0.25, "count": 2}}


class TestHistogramQuantiles:
    def _histogram(self, samples):
        h = Histogram("h")
        for s in samples:
            h.observe(s)
        return h

    def test_quantile_is_bucket_bound_clamped_to_observed_range(self):
        h = self._histogram([3, 3, 3, 10])
        # rank 2 of 4 lands in the <=4 bucket, clamped up to min=3
        assert h.quantile(0.50) == 4.0
        # rank 4 lands in <=16, clamped down to max=10
        assert h.quantile(0.99) == 10.0

    def test_extremes_return_min_and_max(self):
        h = self._histogram([1, 7, 900])
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 900.0

    def test_empty_histogram_has_no_quantiles(self):
        h = self._histogram([])
        assert h.quantile(0.5) is None
        assert h.percentiles() == {"p50": None, "p95": None, "p99": None}

    def test_percentiles_trio(self):
        h = self._histogram(range(1, 101))
        trio = h.percentiles()
        assert set(trio) == {"p50", "p95", "p99"}
        assert trio["p50"] <= trio["p95"] <= trio["p99"]

    def test_snapshot_quantile_rejects_out_of_range(self):
        h = self._histogram([1])
        with pytest.raises(MetricError):
            snapshot_quantile(h.snapshot(), 1.5)
        with pytest.raises(MetricError):
            snapshot_quantile(h.snapshot(), -0.1)

    def test_overflow_bucket_uses_the_observed_max(self):
        h = self._histogram([5000, 6000])
        assert h.quantile(0.99) == 6000.0

    def test_quantile_over_merged_style_snapshot(self):
        # snapshot_quantile works on plain dicts, like cross-process
        # merges produce — no live Histogram needed.
        snap = {"count": 4, "min": 2, "max": 30,
                "buckets": {"<=2": 1, "<=4": 1, "<=16": 1, "<=32": 1}}
        assert snapshot_quantile(snap, 0.50) == 4.0
        assert snapshot_quantile(snap, 1.0) == 30.0
