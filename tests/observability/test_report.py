"""RunReport assembly: determinism, the disabled fast path, and the
end-to-end wiring through kernel, distributed layer and transport."""

import json

import pytest

from repro.core import (
    Advance,
    FunctionComponent,
    PortDirection,
    ProcessComponent,
    Receive,
    Send,
    Simulator,
    WaitUntil,
)
from repro.distributed import ChannelMode, CoSimulation
from repro.observability import (
    NULL_TELEMETRY,
    RunReport,
    Telemetry,
    TraceKind,
    run_report,
)


class Ticker(ProcessComponent):
    def __init__(self, name, count=5):
        super().__init__(name)
        self.count = count
        self.add_port("out", PortDirection.OUT)

    def run(self):
        for i in range(self.count):
            yield Advance(1.0)
            yield Send("out", i)


class Sink(ProcessComponent):
    def __init__(self, name):
        super().__init__(name)
        self.seen = []
        self.add_port("in", PortDirection.IN)

    def run(self):
        while True:
            t, v = yield Receive("in")
            self.seen.append((t, v))


def _single_host(telemetry=None):
    sim = Simulator("obs", telemetry=telemetry)
    ticker = sim.add(Ticker("ticker"))
    sink = sim.add(Sink("sink"))
    sim.wire("n", ticker.port("out"), sink.port("in"))
    return sim, ticker, sink


def _cosim(telemetry=None):
    """A fixed conservative two-subsystem scenario.

    The channel id is pinned so two builds in one process are identical
    (the auto-generated ids come from a process-global counter).
    """
    cosim = CoSimulation(telemetry=telemetry)
    ss1 = cosim.add_subsystem(cosim.add_node("n1"), "ss1")
    ss2 = cosim.add_subsystem(cosim.add_node("n2"), "ss2")

    def sender(comp):
        yield Advance(2.0)
        yield Send("out", "ping")

    def waiter(comp):
        comp.order = []
        t = yield WaitUntil(5.0)
        comp.order.append(t)

    def listener(comp):
        t, v = yield Receive("in")
        comp.got = (t, v)

    ss2.add(FunctionComponent("sender", sender, ports={"out": "out"}))
    ss1.add(FunctionComponent("waiter", waiter))
    listen = FunctionComponent("listener", listener, ports={"in": "in"})
    ss1.add(listen)
    channel = cosim.connect(ss1, ss2, mode=ChannelMode.CONSERVATIVE,
                            channel_id="obs-ch")
    channel.split_net(ss1.wire("net", listen.port("in")),
                      ss2.wire("net", cosim.subsystems["ss2"]
                               .components["sender"].port("out")))
    cosim.run()
    return cosim


class TestSingleHostWiring:
    def test_scheduler_counters_flow_into_report(self):
        sim, __, sink = _single_host()
        sim.run()
        report = sim.report()
        assert report.counter("scheduler.dispatched") > 0
        assert report.counter("scheduler.dispatched") == \
            sim.subsystem.scheduler.dispatched
        assert len(sink.seen) == 5
        assert report.subsystems[0]["name"] == "obs"
        assert report.subsystems[0]["time"] == sim.now

    def test_checkpoint_counters_and_traces(self):
        sim, __, ___ = _single_host()
        sim.run(until=2.5)
        cid = sim.checkpoint("mid")
        sim.run()
        sim.restore(cid)
        report = sim.report()
        assert report.counter("checkpoint.saves") >= 1
        assert report.counter("checkpoint.restores") == 1
        kinds = report.trace_counts
        assert kinds.get(TraceKind.CHECKPOINT_SAVE, 0) >= 1
        assert kinds.get(TraceKind.CHECKPOINT_RESTORE, 0) == 1

    def test_dispatch_traces_recorded(self):
        sim, __, ___ = _single_host()
        sim.run()
        records = sim.telemetry.trace_buffer.records(kind=TraceKind.DISPATCH)
        assert records
        # virtual times on dispatch records are monotonically nondecreasing
        times = [r.time for r in records]
        assert times == sorted(times)


class TestCoSimulationWiring:
    def test_full_stack_counters(self):
        cosim = _cosim()
        report = cosim.report()
        assert report.counter("scheduler.dispatched") > 0
        assert report.counter("safetime.requests") > 0
        assert report.counter("transport.messages") > 0
        assert report.counter("transport.bytes") > 0
        link_counters = [name for name in report.counters
                         if name.startswith("link.")]
        assert link_counters
        assert report.link_totals()["bytes"] == \
            report.counter("transport.bytes")

    def test_message_traces_have_byte_counts(self):
        cosim = _cosim()
        sends = cosim.telemetry.trace_buffer.records(kind=TraceKind.MSG_SEND)
        assert sends
        assert all(record.details["bytes"] > 0 for record in sends)
        assert all("->" in record.subject for record in sends)


class TestDeterminism:
    def test_identical_reports_across_two_runs(self):
        first = _cosim().report(title="det")
        second = _cosim().report(title="det")
        assert first.to_dict() == second.to_dict()
        assert first.to_json() == second.to_json()

    def test_json_round_trips(self):
        report = _cosim().report(title="json")
        data = json.loads(report.to_json())
        assert data["title"] == "json"
        assert data["counters"] == report.counters
        assert "timings" not in data  # wall-clock excluded by default

    def test_timings_opt_in(self):
        report = _cosim().report()
        assert "timings" in report.to_dict(include_timings=True)


class TestDisabledFastPath:
    def test_disabled_telemetry_records_nothing(self):
        cosim = _cosim(telemetry=Telemetry(enabled=False))
        report = cosim.report()
        assert report.counters == {}
        assert report.gauges == {}
        assert report.trace_counts == {}
        # the simulation itself is unaffected
        assert cosim.subsystems["ss1"].components["listener"].got[1] == "ping"

    def test_behaviour_identical_with_and_without_telemetry(self):
        enabled = _cosim()
        disabled = _cosim(telemetry=Telemetry(enabled=False))
        for cosim in (enabled, disabled):
            assert cosim.subsystems["ss1"].components["listener"].got == \
                enabled.subsystems["ss1"].components["listener"].got
            assert cosim.subsystems["ss1"].now == \
                enabled.subsystems["ss1"].now

    def test_null_telemetry_cannot_be_enabled(self):
        with pytest.raises(RuntimeError):
            NULL_TELEMETRY.enable()
        assert not NULL_TELEMETRY.enabled

    def test_report_on_bare_object_rejected(self):
        with pytest.raises(TypeError):
            run_report(object())


class TestRender:
    def test_render_mentions_every_section(self):
        report = _cosim().report(title="render-me")
        text = report.render()
        assert "RunReport: render-me" in text
        assert "ss1" in text and "ss2" in text
        assert "scheduler.dispatched" in text
        assert "trace records" in text

    def test_save_json(self, tmp_path):
        report = _cosim().report()
        path = tmp_path / "report.json"
        report.save_json(str(path))
        assert json.loads(path.read_text())["counters"]
