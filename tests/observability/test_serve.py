"""The HTTP telemetry endpoint: Prometheus rendering and the routes."""

import json
import threading
import urllib.error
import urllib.request

from repro.observability.serve import (
    make_server,
    prometheus_text,
    serve_status_file,
)

SNAPSHOT = {
    "phase": "running",
    "global_time": 12.5,
    "until": 100.0,
    "nodes": {
        "hub": {"idle": False, "rounds": 7, "pending": 2, "wire_out": 40,
                "wire_in": 39, "heartbeat_age": 0.01,
                "subsystems": [{"name": "engine", "time": 12.5,
                                "dispatched": 900, "stalls": 3,
                                "queue_depth": 1}]},
    },
    "telemetry": {
        "counters": {"scheduler.dispatched": 900, "bad": float("inf"),
                     "worse": float("nan")},
        "gauges": {"queue.depth": 4.0, "flag": True},
    },
    "health": [{"src": "hub", "dst": "leaf", "messages": 40, "bytes": 800,
                "ewma_delay": 0.001, "rate": 50.0, "queue_depth": 0.5,
                "stall_fraction": 0.3, "score": 0.82,
                "recommendation": "optimistic"}],
    "series": {"hub/scheduler.dispatched": {"points": [[1.0, 10],
                                                       [2.0, 900]]},
               "hub/empty": {"points": []}},
}


class TestPrometheusText:
    def test_snapshot_renders_every_section(self):
        text = prometheus_text(SNAPSHOT)
        assert 'pia_phase{phase="running"} 1' in text
        assert "pia_global_time 12.5" in text
        assert 'pia_node_rounds{node="hub"} 7' in text
        assert ('pia_subsystem_dispatched_total'
                '{node="hub",subsystem="engine"} 900') in text
        assert ('pia_counter_total{name="scheduler_dispatched"} 900'
                in text)
        assert 'pia_gauge{name="queue_depth"} 4' in text
        assert 'pia_link_health_score{dst="leaf",src="hub"} 0.82' in text
        assert 'pia_link_stall_fraction{dst="leaf",src="hub"} 0.3' in text
        assert ('pia_series_last{name="hub_scheduler_dispatched"} 900'
                in text)

    def test_type_headers_emitted_once(self):
        text = prometheus_text(SNAPSHOT)
        assert text.count("# TYPE pia_counter_total counter") == 1
        assert text.count("# TYPE pia_link_health_score gauge") == 1

    def test_non_finite_and_non_numeric_values_skipped(self):
        text = prometheus_text(SNAPSHOT)
        assert 'name="bad"' not in text
        assert 'name="worse"' not in text
        # booleans render as 0/1 instead of being dropped
        assert 'pia_gauge{name="flag"} 1' in text

    def test_empty_series_skipped(self):
        assert 'name="hub_empty"' not in prometheus_text(SNAPSHOT)

    def test_none_snapshot_yields_minimal_exposition(self):
        text = prometheus_text(None)
        assert 'pia_phase{phase="unknown"} 1' in text
        assert "pia_global_time" not in text

    def test_label_escaping(self):
        text = prometheus_text({"phase": 'we"ird\nphase'})
        assert 'phase="we\\"ird\\nphase"' in text


def fetch(base, path):
    try:
        with urllib.request.urlopen(base + path, timeout=5) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


class TestServer:
    def _serve(self, server):
        threading.Thread(target=server.serve_forever, daemon=True).start()
        host, port = server.server_address[:2]
        return f"http://{host}:{port}"

    def test_routes_over_a_status_file(self, tmp_path):
        path = str(tmp_path / "status.json")
        server = serve_status_file(path, port=0)
        base = self._serve(server)
        try:
            # No snapshot yet: metrics still answers, JSON says 503.
            status, text = fetch(base, "/metrics")
            assert status == 200
            assert 'pia_phase{phase="unknown"} 1' in text
            status, body = fetch(base, "/status.json")
            assert status == 503
            assert "no status snapshot" in json.loads(body)["error"]

            with open(path, "w", encoding="utf-8") as fh:
                json.dump(SNAPSHOT, fh)
            status, body = fetch(base, "/status.json")
            assert status == 200
            assert json.loads(body)["phase"] == "running"
            status, body = fetch(base, "/series.json")
            assert status == 200
            assert "hub/scheduler.dispatched" in json.loads(body)["series"]
            status, body = fetch(base, "/health.json")
            assert status == 200
            assert json.loads(body)["health"][0]["dst"] == "leaf"
            status, text = fetch(base, "/metrics")
            assert status == 200
            assert 'pia_phase{phase="running"} 1' in text
        finally:
            server.shutdown()
            server.server_close()

    def test_index_and_unknown_paths(self):
        server = make_server(lambda: SNAPSHOT, port=0)
        base = self._serve(server)
        try:
            status, body = fetch(base, "/")
            assert status == 200
            assert "/metrics" in body
            status, body = fetch(base, "/nope")
            assert status == 404
            assert "unknown path" in json.loads(body)["error"]
            # trailing slashes and aliases resolve
            status, __ = fetch(base, "/status/")
            assert status == 200
        finally:
            server.shutdown()
            server.server_close()
