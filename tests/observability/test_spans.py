"""Causal span minting, propagation invariants, and chain linking."""

from repro.observability import (
    SpanMinter,
    Telemetry,
    TraceKind,
    causal_chains,
    ensure_context,
    span_details,
    span_origin,
)
from repro.transport.message import Message, MessageKind


def msg(kind=MessageKind.SIGNAL, src="n1", dst="n2", **kwargs):
    return Message(kind=kind, src=src, dst=dst, channel="ch",
                   time=1.0, **kwargs)


class TestSpanMinter:
    def test_root_context_shape(self):
        minter = SpanMinter()
        trace_id, span, parent, hop = minter.mint("n1")
        assert trace_id == span == "n1:1"
        assert parent is None
        assert hop == 0

    def test_child_links_to_cause(self):
        minter = SpanMinter()
        root = minter.mint("n1")
        child = minter.mint("n2", cause=root)
        assert child == ("n1:1", "n2:1", "n1:1", 1)

    def test_ordinal_streams_are_per_origin(self):
        minter = SpanMinter()
        assert minter.mint("n1")[1] == "n1:1"
        assert minter.mint("n2")[1] == "n2:1"
        assert minter.mint("n1")[1] == "n1:2"

    def test_reset_restarts_ordinals(self):
        minter = SpanMinter()
        minter.mint("n1")
        minter.reset()
        assert minter.mint("n1")[1] == "n1:1"

    def test_deterministic_across_instances(self):
        a, b = SpanMinter(), SpanMinter()
        seq = ["n1", "n1", "n2", "n1"]
        assert [a.mint(n) for n in seq] == [b.mint(n) for n in seq]


class TestEnsureContext:
    def test_mints_once_and_is_idempotent(self):
        telemetry = Telemetry()
        message = msg()
        first = ensure_context(telemetry, message)
        again = ensure_context(telemetry, message)
        assert first is not None
        assert again == first == message.trace

    def test_safe_time_kinds_never_minted(self):
        telemetry = Telemetry()
        for kind in (MessageKind.SAFE_TIME_REQUEST,
                     MessageKind.SAFE_TIME_REPLY,
                     MessageKind.SAFE_TIME_GRANT):
            assert ensure_context(telemetry, msg(kind=kind)) is None

    def test_child_of_current_cause(self):
        telemetry = Telemetry()
        telemetry.cause = ("n9:1", "n9:1", None, 0)
        context = ensure_context(telemetry, msg(src="n1"))
        assert context == ("n9:1", "n1:1", "n9:1", 1)

    def test_reply_shares_request_context(self):
        telemetry = Telemetry()
        request = msg(kind=MessageKind.HW_CALL, request_id=5)
        ensure_context(telemetry, request)
        reply = request.reply(MessageKind.HW_REPLY, time=2.0)
        assert reply.trace == request.trace


class TestHelpers:
    def test_span_details_round_trip(self):
        assert span_details(None) == {}
        assert span_details(("t", "s", "p", 3)) == \
            {"trace_id": "t", "span": "s", "parent": "p", "hop": 3}

    def test_span_origin_strips_ordinal(self):
        assert span_origin("n-w0:12") == "n-w0"
        assert span_origin("host:8:3") == "host:8"


class TestCausalChains:
    def send(self, span, parent=None, hop=0):
        return {"kind": TraceKind.MSG_SEND, "time": 1.0, "subject": "a->b",
                "span": span, "parent": parent, "hop": hop}

    def recv(self, span):
        return {"kind": TraceKind.MSG_RECV, "time": 1.0, "subject": "a->b",
                "span": span}

    def test_links_sends_to_receives(self):
        chains = causal_chains([self.send("n1:1"), self.recv("n1:1")])
        assert set(chains["sends"]) == {"n1:1"}
        assert len(chains["receives"]["n1:1"]) == 1
        assert chains["orphan_receives"] == []
        assert chains["broken_parents"] == []

    def test_orphan_receive_detected(self):
        chains = causal_chains([self.recv("ghost:1")])
        assert len(chains["orphan_receives"]) == 1

    def test_duplicate_deliveries_share_span_not_orphans(self):
        chains = causal_chains(
            [self.send("n1:1"), self.recv("n1:1"), self.recv("n1:1")])
        assert len(chains["receives"]["n1:1"]) == 2
        assert chains["orphan_receives"] == []

    def test_broken_parent_detected_and_max_hop(self):
        chains = causal_chains([
            self.send("n1:1"),
            self.send("n2:1", parent="n1:1", hop=1),
            self.send("n2:2", parent="missing:9", hop=4),
        ])
        assert [r["span"] for r in chains["broken_parents"]] == ["n2:2"]
        assert chains["max_hop"] == 4

    def test_untraced_records_ignored(self):
        chains = causal_chains([
            {"kind": TraceKind.MSG_RECV, "time": 0.0, "subject": "a->b"},
            {"kind": TraceKind.DISPATCH, "time": 0.0, "subject": "ss"},
        ])
        assert chains["sends"] == {}
        assert chains["orphan_receives"] == []
