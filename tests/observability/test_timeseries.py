"""Streaming time-series: rings, cadences, deltas, executor sampling."""

import pytest

from repro.bench.workloads import streaming_pair
from repro.observability import (
    MetricsRegistry,
    Telemetry,
    TimeSeries,
    TimeSeriesRecorder,
)


def registry_with(counters=(), gauges=()):
    registry = MetricsRegistry()
    for name, value in counters:
        registry.counter(name).inc(value)
    for name, value in gauges:
        registry.gauge(name).set(value)
    return registry


class TestTimeSeries:
    def test_ring_is_bounded_but_appended_counts_all(self):
        series = TimeSeries("s", capacity=3)
        for n in range(5):
            series.append(float(n), n)
        assert series.as_list() == [[2.0, 2], [3.0, 3], [4.0, 4]]
        assert len(series) == 3
        assert series.appended == 5


class TestRecorderCadences:
    def test_defaults_to_virtual_interval_of_one(self):
        recorder = TimeSeriesRecorder()
        assert recorder.virtual_interval == 1.0
        assert recorder.wall_interval is None

    @pytest.mark.parametrize("kwargs", [
        {"virtual_interval": 0.0}, {"virtual_interval": -1.0},
        {"wall_interval": 0.0}, {"wall_interval": -0.5},
    ])
    def test_non_positive_intervals_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(**kwargs)

    def test_virtual_cadence_samples_once_per_crossing(self):
        recorder = TimeSeriesRecorder(virtual_interval=1.0)
        registry = registry_with(counters=[("c", 1)])
        # t=0 due; 0.5 not due; 1.7 due (crossed 1.0); 1.9 not due
        # (next is 2.0); 5.0 due once even though it skipped 2..4.
        assert [recorder.tick(t, registry)
                for t in (0.0, 0.5, 1.7, 1.9, 5.0)] \
            == [True, False, True, False, True]
        assert recorder.samples == 3

    def test_wall_cadence_arms_on_first_tick(self):
        recorder = TimeSeriesRecorder(wall_interval=1.0)
        registry = registry_with(counters=[("c", 1)])
        assert recorder.tick(0.0, registry, wall=10.0) is False  # arms
        assert recorder.tick(0.0, registry, wall=10.5) is False
        assert recorder.tick(0.0, registry, wall=11.2) is True
        assert recorder.tick(0.0, registry, wall=11.5) is False

    def test_sample_covers_counters_and_gauges_with_name_filter(self):
        registry = registry_with(counters=[("keep.me", 3), ("drop.me", 9)],
                                 gauges=[("keep.depth", 2.5)])
        recorder = TimeSeriesRecorder(names=["keep.me", "keep.depth"])
        recorder.sample(1.0, registry)
        assert sorted(recorder.series) == ["keep.depth", "keep.me"]
        assert recorder.to_dict()["keep.me"]["points"] == [[1.0, 3]]


class TestDeltaAndClear:
    def test_take_delta_ships_fresh_tail_once(self):
        registry = registry_with(counters=[("c", 1)])
        recorder = TimeSeriesRecorder(virtual_interval=1.0)
        recorder.tick(0.0, registry)
        registry.counter("c").inc()
        recorder.tick(1.0, registry)
        first = recorder.take_delta()
        assert first == {"c": [[0.0, 1], [1.0, 2]]}
        assert recorder.take_delta() == {}
        registry.counter("c").inc()
        recorder.tick(2.0, registry)
        assert recorder.take_delta() == {"c": [[2.0, 3]]}

    def test_clear_rearms_the_virtual_cadence(self):
        registry = registry_with(counters=[("c", 1)])
        recorder = TimeSeriesRecorder(virtual_interval=1.0)
        recorder.tick(0.0, registry)
        recorder.clear()
        assert recorder.series == {}
        assert recorder.samples == 0
        assert recorder.tick(0.0, registry) is True   # due again at t=0


class TestCooperativeSampling:
    def test_cooperative_runs_sample_deterministically(self):
        dumps = []
        for _ in range(2):
            cosim = streaming_pair(20, 1.0)
            recorder = cosim.telemetry.attach_series(
                TimeSeriesRecorder(virtual_interval=2.0))
            cosim.run()
            assert recorder.samples > 0
            dumps.append(recorder.to_dict())
        assert dumps[0] == dumps[1]

    def test_report_carries_series_only_when_asked(self):
        cosim = streaming_pair(20, 1.0)
        cosim.telemetry.attach_series(TimeSeriesRecorder())
        cosim.run()
        report = cosim.report()
        assert report.timeseries
        assert "timeseries" not in report.to_dict()
        assert report.to_dict(include_series=True)["timeseries"] \
            == report.timeseries
        assert "time-series:" in report.render()

    def test_attach_series_is_returned_and_reset_clears_it(self):
        telemetry = Telemetry()
        recorder = telemetry.attach_series(TimeSeriesRecorder())
        assert telemetry.series is recorder
        recorder.sample(0.0, registry_with(counters=[("c", 1)]))
        telemetry.reset()
        assert recorder.series == {}
