"""Unit tests for the bounded structured trace buffer."""

import pytest

from repro.observability import Telemetry, TraceBuffer, TraceKind, TraceRecord


def _fill(buf, count, kind=TraceKind.DISPATCH):
    for i in range(count):
        buf.append(TraceRecord(i + 1, kind, float(i), "ss"))


class TestBoundedness:
    def test_capacity_is_a_hard_bound(self):
        buf = TraceBuffer(capacity=8)
        _fill(buf, 100)
        assert len(buf) == 8
        assert buf.appended == 100
        assert buf.dropped == 92

    def test_keeps_the_most_recent_records(self):
        buf = TraceBuffer(capacity=4)
        _fill(buf, 10)
        assert [r.time for r in buf.records()] == [6.0, 7.0, 8.0, 9.0]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            TraceBuffer(capacity=0)

    def test_clear_resets_the_append_tally(self):
        buf = TraceBuffer(capacity=2)
        _fill(buf, 5)
        buf.clear()
        assert len(buf) == 0
        assert buf.appended == 0
        assert buf.dropped == 0


class TestFiltering:
    def test_records_filtered_by_kind(self):
        buf = TraceBuffer(capacity=16)
        buf.append(TraceRecord(1, TraceKind.DISPATCH, 0.0, "ss"))
        buf.append(TraceRecord(2, TraceKind.STALL, 1.0, "ss"))
        buf.append(TraceRecord(3, TraceKind.DISPATCH, 2.0, "ss"))
        assert len(buf.records(kind=TraceKind.DISPATCH)) == 2
        assert len(buf.records(kind=TraceKind.STALL)) == 1

    def test_counts_by_kind_covers_retained_records(self):
        buf = TraceBuffer(capacity=16)
        _fill(buf, 3, kind=TraceKind.MSG_SEND)
        buf.append(TraceRecord(4, TraceKind.ROLLBACK, 0.0, "ss"))
        assert buf.counts_by_kind() == {TraceKind.MSG_SEND: 3,
                                        TraceKind.ROLLBACK: 1}


class TestRecord:
    def test_to_dict_flattens_details(self):
        record = TraceRecord(7, TraceKind.GRANT, 2.5, "ss1",
                             {"peer": "ss2", "desired": 3.0})
        assert record.to_dict() == {"seq": 7, "kind": "grant", "time": 2.5,
                                    "subject": "ss1", "peer": "ss2",
                                    "desired": 3.0}

    def test_to_dict_namespaces_colliding_detail_keys(self):
        """Regression: a detail named seq/kind/time/subject used to
        overwrite the record's own field in the flattened dict (the fault
        injector's records carry a per-link ``seq`` detail)."""
        record = TraceRecord(7, TraceKind.FAULT_INJECT, 2.5, "a->b",
                             {"action": "drop", "seq": 99, "time": -1.0})
        data = record.to_dict()
        assert data["seq"] == 7
        assert data["time"] == 2.5
        assert data["detail.seq"] == 99
        assert data["detail.time"] == -1.0
        assert data["action"] == "drop"

    def test_wall_clock_excluded_from_equality_and_dict(self):
        a = TraceRecord(1, TraceKind.DISPATCH, 0.0, "ss", wall=10.0)
        b = TraceRecord(1, TraceKind.DISPATCH, 0.0, "ss", wall=20.0)
        assert a == b
        assert "wall" not in a.to_dict()


class TestTelemetryTraceIntegration:
    def test_telemetry_assigns_monotone_sequence_numbers(self):
        telemetry = Telemetry(trace_capacity=8)
        telemetry.trace(TraceKind.CHECKPOINT_SAVE, time=1.0, subject="ss")
        telemetry.trace(TraceKind.CHECKPOINT_RESTORE, time=2.0, subject="ss")
        seqs = [r.seq for r in telemetry.trace_buffer.records()]
        assert seqs == [1, 2]

    def test_capacity_respected_through_telemetry(self):
        telemetry = Telemetry(trace_capacity=3)
        for i in range(10):
            telemetry.trace(TraceKind.DISPATCH, time=float(i))
        assert len(telemetry.trace_buffer) == 3
        assert telemetry.trace_buffer.dropped == 7

    def test_details_kwargs_become_record_details(self):
        telemetry = Telemetry()
        telemetry.trace(TraceKind.MSG_SEND, time=4.0, subject="a->b",
                        message_kind="event", bytes=42)
        record = telemetry.trace_buffer.records()[0]
        assert record.details == {"message_kind": "event", "bytes": 42}
