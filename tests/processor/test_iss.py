"""The tiny ISS and its assembler."""

import pytest

from repro.core import Advance, FunctionComponent, Receive, Send, Simulator
from repro.processor import (
    GENERIC,
    AssemblyError,
    Instruction,
    IssComponent,
    IssError,
    assemble,
    assemble_with_symbols,
)


def run_program(source, *, setup=None, fuel=100_000, profile=GENERIC):
    sim = Simulator()
    cpu = IssComponent("cpu", assemble(source), profile=profile, fuel=fuel)
    if setup is not None:
        setup(cpu)
    sim.add(cpu)
    sim.run()
    return sim, cpu


class TestAssembler:
    def test_labels_and_comments(self):
        program, labels, constants = assemble_with_symbols("""
        ; a loop
        .equ LIMIT 3
        start:  LDI r1, 0
        loop:   ADDI r1, r1, 1
                LDI r2, LIMIT
                BNE r1, r2, loop   # back edge
                HALT
        """)
        assert labels == {"start": 0, "loop": 1}
        assert constants == {"LIMIT": 3}
        assert program[3].op == "BNE"
        assert program[3].args == (1, 2, 1)

    def test_memory_operand_forms(self):
        program = assemble("LD r1, 8(r2)\nST r1, (r3)\n")
        assert program[0].args == (1, 8, 2)
        assert program[1].args == (1, 0, 3)

    def test_char_and_hex_immediates(self):
        program = assemble("LDI r1, 'A'\nLDI r2, 0x10\nLDI r3, -5\n")
        assert [i.args[1] for i in program] == [65, 16, -5]

    @pytest.mark.parametrize("bad", [
        "FROB r1, r2",               # unknown opcode
        "ADD r1, r2",                # wrong arity
        "LDI r99, 0",                # no such register
        "LDI r1, nolabel",           # unknown symbol
        "x: NOP\nx: NOP",            # duplicate label
        ".equ A",                    # malformed directive
        ".weird 1",                  # unknown directive
        "LD r1, r2",                 # bad memory operand
    ])
    def test_errors(self, bad):
        with pytest.raises(AssemblyError):
            assemble(bad)


class TestExecution:
    def test_arithmetic(self):
        __, cpu = run_program("""
            LDI r1, 6
            LDI r2, 7
            MUL r3, r1, r2
            ADDI r4, r3, 58
            SUB r5, r4, r1
            HALT
        """)
        assert cpu.reg(3) == 42
        assert cpu.reg(4) == 100
        assert cpu.reg(5) == 94

    def test_r0_hardwired_zero(self):
        __, cpu = run_program("LDI r0, 99\nADD r1, r0, r0\nHALT\n")
        assert cpu.reg(0) == 0
        assert cpu.reg(1) == 0

    def test_signed_comparisons(self):
        __, cpu = run_program("""
            LDI r1, -3
            LDI r2, 2
            SLT r3, r1, r2     ; -3 < 2
            SLT r4, r2, r1
            HALT
        """)
        assert cpu.reg(3) == 1
        assert cpu.reg(4) == 0

    def test_loop_sums_memory(self):
        def setup(cpu):
            for i in range(10):
                cpu.memory.write(0x100 + 4 * i, i + 1)

        __, cpu = run_program("""
            .equ BUF 0x100
            LDI r1, 0          ; sum
            LDI r2, BUF        ; pointer
            LDI r3, 10         ; count
        loop:
            LD  r4, (r2)
            ADD r1, r1, r4
            ADDI r2, r2, 4
            ADDI r3, r3, -1
            BNE r3, r0, loop
            ST  r1, 0x200(r0)
            HALT
        """, setup=setup)
        assert cpu.reg(1) == 55
        assert cpu.memory.read(0x200) == 55

    def test_subroutine_call(self):
        __, cpu = run_program("""
            LDI r1, 20
            JAL r15, double
            JAL r15, double
            HALT
        double:
            ADD r1, r1, r1
            JR r15
        """)
        assert cpu.reg(1) == 80

    def test_byte_ops(self):
        __, cpu = run_program("""
            LDI r1, 0x1FF
            STB r1, 0x50(r0)
            LDB r2, 0x50(r0)
            HALT
        """)
        assert cpu.reg(2) == 0xFF

    def test_division_by_zero_traps(self):
        with pytest.raises(IssError):
            run_program("LDI r1, 4\nDIV r2, r1, r0\nHALT\n")

    def test_fuel_limit(self):
        with pytest.raises(IssError):
            run_program("loop: JMP loop\n", fuel=100)

    def test_instruction_timing(self):
        """GENERIC: 1 MHz, alu=1 load=2 store=2 branch variants etc."""
        __, cpu = run_program("""
            LDI r1, 1
            LDI r2, 2
            ADD r3, r1, r2
            HALT
        """)
        # 4 instructions, all timing class alu/nop at 1 cycle each
        assert cpu.local_time == pytest.approx(4e-6)
        assert cpu.instret == 4


class TestIO:
    def test_in_out_wired_to_ports(self):
        sim = Simulator()
        program = assemble("""
        loop:
            IN   r1, rx
            BEQ  r1, r0, done
            MUL  r2, r1, r1
            OUT  r2, tx
            JMP  loop
        done:
            HALT
        """)
        cpu = IssComponent("cpu", program,
                           ports={"rx": "in", "tx": "out"})
        got = []

        def feeder(comp):
            for v in [3, 5, 0]:
                yield Advance(1e-3)
                yield Send("out", v)

        def collector(comp):
            while True:
                t, v = yield Receive("in")
                got.append(v)

        feed = FunctionComponent("feed", feeder, ports={"out": "out"})
        coll = FunctionComponent("coll", collector, ports={"in": "in"})
        sim.add(cpu)
        sim.add(feed)
        sim.add(coll)
        sim.wire("rxw", feed.port("out"), cpu.port("rx"))
        sim.wire("txw", cpu.port("tx"), coll.port("in"))
        sim.run()
        assert got == [9, 25]
        assert cpu.halted

    def test_in_rejects_non_integer(self):
        sim = Simulator()
        cpu = IssComponent("cpu", assemble("IN r1, rx\nHALT\n"),
                           ports={"rx": "in"})

        def feeder(comp):
            yield Send("out", "not an int")

        feed = FunctionComponent("feed", feeder, ports={"out": "out"})
        sim.add(cpu)
        sim.add(feed)
        sim.wire("w", feed.port("out"), cpu.port("rx"))
        with pytest.raises(IssError):
            sim.run()


class TestIssCheckpointing:
    def test_restore_mid_program(self):
        sim = Simulator()
        program = assemble("""
        loop:
            IN   r1, rx
            ADD  r2, r2, r1
            OUT  r2, tx
            JMP  loop
        """)
        cpu = IssComponent("cpu", program, ports={"rx": "in", "tx": "out"})

        def feeder(comp):
            for v in [1, 2, 3, 4]:
                yield Advance(1.0)
                yield Send("out", v)

        def collector(comp):
            comp.got = []
            while True:
                t, v = yield Receive("in")
                comp.got.append(v)

        feed = FunctionComponent("feed", feeder, ports={"out": "out"})
        coll = FunctionComponent("coll", collector, ports={"in": "in"})
        sim.add(cpu)
        sim.add(feed)
        sim.add(coll)
        sim.wire("rxw", feed.port("out"), cpu.port("rx"))
        sim.wire("txw", cpu.port("tx"), coll.port("in"))
        sim.run(until=2.5)
        cid = sim.checkpoint()
        regs_at_ckpt = list(cpu.regs)
        sim.run()
        assert coll.got == [1, 3, 6, 10]
        sim.restore(cid)
        assert cpu.regs == regs_at_ckpt
        sim.run()
        assert coll.got == [1, 3, 6, 10]
