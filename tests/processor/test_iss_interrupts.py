"""ISS + interrupt controller + synchronous addresses, end to end.

The full stack of paper section 2.1.1 exercised through real (tiny-ISA)
instructions: a program polls a memory-mapped mailbox while a device
writes it through the interrupt controller.  Statically marked addresses
force SYNC-like gating of the loads; the optimistic policy detects the
stale read and recovers by dynamic marking and rollback.
"""

import pytest

from repro.core import Advance, FunctionComponent, Send, Simulator, SyncPolicy
from repro.processor import (
    GENERIC,
    InterruptController,
    IssComponent,
    assemble,
)

#: Polls the uart mailbox flag; on each message, accumulates the payload
#: and acknowledges.  Exits after 2 messages.
POLLER = """
    .equ FLAG  0xF00
    .equ DATA  0xF04
    LDI r5, 0          ; messages seen
    LDI r6, 0          ; accumulated payload
poll:
    LD  r1, FLAG(r0)
    BEQ r1, r0, poll
    LD  r2, DATA(r0)
    ADD r6, r6, r2
    ST  r0, FLAG(r0)   ; acknowledge
    ADDI r5, r5, 1
    LDI r7, 2
    BLT r5, r7, poll
    ST  r6, 0x200(r0)
    HALT
"""


def build(policy):
    sim = Simulator()
    marks = range(0xF00, 0xF08) if policy is SyncPolicy.STATIC else ()
    # yield_every bounds the busy-wait's run-ahead (the scheduling quantum
    # a preemptive host would impose); without it, an optimistic ungated
    # poll loop would spin to its fuel limit before any event lands.
    cpu = IssComponent("cpu", assemble(POLLER), profile=GENERIC,
                       sync_policy=policy, synchronous_addresses=marks,
                       fuel=500_000, yield_every=2_000)
    sim.add(cpu)
    controller = InterruptController("ctl", cpu.memory, base_addr=0xF00)
    controller.add_line("uart")
    sim.add(controller)

    def device(comp):
        yield Advance(2e-3)
        yield Send("out", 40)
        yield Advance(3e-3)
        yield Send("out", 2)

    dev = sim.add(FunctionComponent("dev", device, ports={"out": "out"}))
    sim.wire("irq", dev.port("out"), controller.port("uart"))
    return sim, cpu, controller


class TestStaticMarks:
    def test_polling_loop_sees_both_messages(self):
        sim, cpu, controller = build(SyncPolicy.STATIC)
        sim.run()
        assert cpu.halted
        assert cpu.memory.read(0x200) == 42
        assert controller.delivered == 2
        assert controller.dropped == 0

    def test_loads_were_gated(self):
        sim, cpu, controller = build(SyncPolicy.STATIC)
        sim.run()
        gates = sum(1 for kind, flag in cpu._log
                    if kind == "gate" and flag)
        assert gates > 0


class TestOptimisticRecovery:
    def test_violation_detected_and_recovered(self):
        """Unmarked, the poller spins ahead of system time reading stale
        flags; the device write at t=2ms violates and the simulator
        rewinds with the flag address dynamically marked."""
        sim, cpu, controller = build(SyncPolicy.OPTIMISTIC)
        sim.run_with_recovery(sync_tables=[cpu.sync_table])
        assert sim.recoveries >= 1
        assert cpu.sync_table.dynamic_marks
        assert cpu.memory.read(0x200) == 42

    def test_matches_static_result(self):
        sim_s, cpu_s, __ = build(SyncPolicy.STATIC)
        sim_s.run()
        sim_o, cpu_o, __ = build(SyncPolicy.OPTIMISTIC)
        sim_o.run_with_recovery(sync_tables=[cpu_o.sync_table])
        assert cpu_o.memory.read(0x200) == cpu_s.memory.read(0x200)
        assert cpu_o.reg(6) == cpu_s.reg(6)
