"""Larger ISS programs: real algorithms under per-instruction timing."""

import pytest

from repro.core import Advance, FunctionComponent, Receive, Send, Simulator
from repro.processor import ARM7, GENERIC, I960, IssComponent, assemble


def run(source, *, setup=None, profile=GENERIC, fuel=500_000):
    sim = Simulator()
    cpu = IssComponent("cpu", assemble(source), profile=profile, fuel=fuel)
    if setup:
        setup(cpu)
    sim.add(cpu)
    sim.run()
    return cpu


FIB = """
    ; r1 = fib(r2) iteratively
    LDI r2, 20
    LDI r3, 0      ; a
    LDI r1, 1      ; b
loop:
    BEQ r2, r0, done
    ADD r4, r3, r1
    MOV r3, r1
    MOV r1, r4
    ADDI r2, r2, -1
    JMP loop
done:
    HALT
"""


BUBBLE_SORT = """
    .equ BUF 0x100
    .equ N 8
    LDI r1, N
    ADDI r1, r1, -1      ; outer = N-1
outer:
    BEQ r1, r0, done
    LDI r2, 0            ; i = 0
    LDI r3, BUF
inner:
    BEQ r2, r1, outer_next
    LD  r4, (r3)
    LD  r5, 4(r3)
    SLT r6, r5, r4       ; r5 < r4 ? swap
    BEQ r6, r0, no_swap
    ST  r5, (r3)
    ST  r4, 4(r3)
no_swap:
    ADDI r3, r3, 4
    ADDI r2, r2, 1
    JMP inner
outer_next:
    ADDI r1, r1, -1
    JMP outer
done:
    HALT
"""


GCD = """
    ; r1 = gcd(r1, r2) by remainders
loop:
    BEQ r2, r0, done
    REM r3, r1, r2
    MOV r1, r2
    MOV r2, r3
    JMP loop
done:
    HALT
"""


class TestAlgorithms:
    def test_fibonacci(self):
        cpu = run(FIB)
        assert cpu.reg(1) == 10946        # fib(21)

    def test_bubble_sort(self):
        data = [42, 7, 99, 1, 56, 23, 88, 15]

        def setup(cpu):
            for index, value in enumerate(data):
                cpu.memory.write(0x100 + 4 * index, value)

        cpu = run(BUBBLE_SORT, setup=setup)
        result = [cpu.memory.read(0x100 + 4 * i) for i in range(8)]
        assert result == sorted(data)

    def test_gcd(self):
        cpu = run("LDI r1, 252\nLDI r2, 105\n" + GCD)
        assert cpu.reg(1) == 21

    def test_profiles_change_time_not_results(self):
        fast = run(FIB, profile=GENERIC)
        slow = run(FIB, profile=ARM7)
        i960 = run(FIB, profile=I960)
        assert fast.reg(1) == slow.reg(1) == i960.reg(1)
        assert fast.instret == slow.instret == i960.instret
        # ARM7 at 25 MHz is slower per cycle than GENERIC at 1 MHz? No —
        # GENERIC is 1 MHz with 1-cycle ops; ARM7 is 25 MHz with multi-
        # cycle branches: virtual times must simply differ and be > 0.
        assert fast.local_time > 0
        assert fast.local_time != slow.local_time


class TestIoIntegration:
    def test_stream_processing_program(self):
        """A moving-average filter: reads samples, emits the mean of the
        last 4, demonstrating ISS + port co-simulation."""
        source = """
            LDI r10, 0       ; running sum
            LDI r11, 0       ; count
        loop:
            IN   r1, rx
            BEQ  r1, r0, done
            ADD  r10, r10, r1
            ADDI r11, r11, 1
            ANDI r12, r11, 3
            BNE  r12, r0, loop
            LDI  r13, 4
            DIV  r2, r10, r13
            OUT  r2, tx
            LDI  r10, 0
            JMP  loop
        done:
            HALT
        """
        sim = Simulator()
        cpu = IssComponent("cpu", assemble(source),
                           ports={"rx": "in", "tx": "out"})
        samples = [4, 8, 12, 16, 20, 20, 20, 20, 0]

        def feeder(comp):
            for sample in samples:
                yield Advance(1e-4)
                yield Send("out", sample)

        def collector(comp):
            comp.means = []
            while True:
                t, value = yield Receive("in")
                comp.means.append(value)

        feed = FunctionComponent("feed", feeder, ports={"out": "out"})
        coll = FunctionComponent("coll", collector, ports={"in": "in"})
        sim.add(cpu)
        sim.add(feed)
        sim.add(coll)
        sim.wire("rxw", feed.port("out"), cpu.port("rx"))
        sim.wire("txw", cpu.port("tx"), coll.port("in"))
        sim.run()
        assert coll.means == [10, 20]

    def test_two_processors_pipeline(self):
        """Two ISS cores chained: the first doubles, the second adds 1."""
        doubler = assemble("""
        loop:
            IN  r1, rx
            BEQ r1, r0, done
            ADD r1, r1, r1
            OUT r1, tx
            JMP loop
        done:
            LDI r1, 0
            OUT r1, tx
            HALT
        """)
        incr = assemble("""
        loop:
            IN  r1, rx
            BEQ r1, r0, done
            ADDI r1, r1, 1
            OUT r1, tx
            JMP loop
        done:
            HALT
        """)
        sim = Simulator()
        cpu_a = IssComponent("a", doubler, ports={"rx": "in", "tx": "out"})
        cpu_b = IssComponent("b", incr, ports={"rx": "in", "tx": "out"})

        def feeder(comp):
            for value in (3, 5, 0):
                yield Advance(1e-4)
                yield Send("out", value)

        def collector(comp):
            comp.got = []
            while True:
                t, value = yield Receive("in")
                comp.got.append(value)

        feed = FunctionComponent("feed", feeder, ports={"out": "out"})
        coll = FunctionComponent("coll", collector, ports={"in": "in"})
        for component in (cpu_a, cpu_b, feed, coll):
            sim.add(component)
        sim.wire("w1", feed.port("out"), cpu_a.port("rx"))
        sim.wire("w2", cpu_a.port("tx"), cpu_b.port("rx"))
        sim.wire("w3", cpu_b.port("tx"), coll.port("in"))
        sim.run()
        assert coll.got == [7, 11]
        assert cpu_a.halted and cpu_b.finished


class TestIssDistributed:
    def test_iss_across_subsystems(self):
        """An ISS core on one node feeding a collector on another — the
        paper's multiprocessor co-design case with real instructions."""
        from repro.distributed import CoSimulation
        program = assemble("""
            LDI r2, 5
        loop:
            BEQ r2, r0, done
            MUL r3, r2, r2
            OUT r3, tx
            ADDI r2, r2, -1
            JMP loop
        done:
            HALT
        """)
        cosim = CoSimulation()
        ss_a = cosim.add_subsystem(cosim.add_node("na"), "sa")
        ss_b = cosim.add_subsystem(cosim.add_node("nb"), "sb")
        cpu = IssComponent("cpu", program, ports={"tx": "out"})

        def collector(comp):
            comp.got = []
            for __ in range(5):
                t, value = yield Receive("in")
                comp.got.append(value)

        coll = FunctionComponent("coll", collector, ports={"in": "in"})
        ss_a.add(cpu)
        ss_b.add(coll)
        channel = cosim.connect(ss_a, ss_b)
        channel.split_net(ss_a.wire("w", cpu.port("tx")),
                          ss_b.wire("w", coll.port("in")))
        cosim.run()
        assert coll.got == [25, 16, 9, 4, 1]
