"""Processor substrate: timing, memory, sync addresses, interrupts."""

import pytest

from repro.core import (
    Advance,
    ConfigurationError,
    ConsistencyViolation,
    FunctionComponent,
    Receive,
    Send,
    SimulationError,
    Simulator,
    SyncPolicy,
)
from repro.processor import (
    ARM7,
    GENERIC,
    PENTIUM_PRO_200,
    BasicBlockTimer,
    InterruptController,
    MemRead,
    MemWrite,
    Memory,
    ProcessorProfile,
    SoftwareComponent,
)


class TestTiming:
    def test_profile_seconds(self):
        assert PENTIUM_PRO_200.seconds(200) == pytest.approx(1e-6)

    def test_cycles_for_unknown_op_uses_default(self):
        profile = ProcessorProfile("p", 1e6, {"alu": 2}, default_cycles=7)
        assert profile.cycles_for("alu") == 2
        assert profile.cycles_for("teleport") == 7

    def test_block_command(self):
        timer = BasicBlockTimer(GENERIC)        # 1 MHz, 1 cycle/op
        cmd = timer.block(alu=5, load=3)
        assert isinstance(cmd, Advance)
        assert cmd.dt == pytest.approx(8e-6)
        assert timer.total_cycles == 8

    def test_negative_counts_rejected(self):
        timer = BasicBlockTimer(GENERIC)
        with pytest.raises(ConfigurationError):
            timer.cycles(alu=-1)

    def test_invalid_clock(self):
        with pytest.raises(ConfigurationError):
            ProcessorProfile("bad", 0)


class TestMemory:
    def test_little_endian_roundtrip(self):
        mem = Memory(64)
        mem.write(0, 0x11223344)
        assert mem.read(0) == 0x11223344
        assert mem.read(0, 1) == 0x44
        assert mem.read(3, 1) == 0x11

    def test_bounds_checked(self):
        mem = Memory(16)
        with pytest.raises(SimulationError):
            mem.read(14, 4)
        with pytest.raises(SimulationError):
            mem.write(-1, 0)

    def test_width_masking(self):
        mem = Memory(16)
        mem.write(0, 0x1FF, 1)
        assert mem.read(0, 1) == 0xFF

    def test_bulk_load_dump(self):
        mem = Memory(32)
        mem.load_bytes(4, b"hello")
        assert mem.dump_bytes(4, 5) == b"hello"

    def test_deepcopy_shares_table(self):
        import copy
        mem = Memory(16)
        clone = copy.deepcopy(mem)
        assert clone.table is mem.table
        clone.write(0, 1)
        assert mem.read(0) == 0   # data is copied

    def test_external_write_violation(self):
        from repro.core import SyncTable
        table = SyncTable(policy=SyncPolicy.OPTIMISTIC)
        mem = Memory(64, sync_table=table)
        mem.record_access(0x10, 5.0)      # CPU read at local time 5
        with pytest.raises(ConsistencyViolation):
            mem.external_write(0x10, 9, time=3.0)   # late interrupt write

    def test_external_write_ok_when_synchronous(self):
        from repro.core import SyncTable
        table = SyncTable(policy=SyncPolicy.OPTIMISTIC)
        table.mark_range(0x10, 0x14)
        mem = Memory(64, sync_table=table)
        mem.record_access(0x10, 5.0)
        mem.external_write(0x10, 9, time=3.0)
        assert mem.read(0x10) == 9


class Firmware(SoftwareComponent):
    """Reads a mailbox twice with compute in between."""

    def __init__(self, name, **kw):
        super().__init__(name, **kw)
        self.samples = []

    def firmware(self):
        yield self.timer.block(alu=10)
        first = yield MemRead(0x100)
        self.samples.append(first)
        yield self.timer.block(alu=100)
        second = yield MemRead(0x100)
        self.samples.append(second)
        yield MemWrite(0x104, second + 1)


class TestSoftwareComponent:
    def test_mem_commands_roundtrip(self):
        sim = Simulator()
        cpu = sim.add(Firmware("cpu"))
        cpu.memory.write(0x100, 41)
        sim.run()
        assert cpu.samples == [41, 41]
        assert cpu.memory.read(0x104) == 42

    def test_synchronous_address_forces_wait(self):
        """With 0x100 synchronous, the second read waits for system time,
        so a device write at an earlier stamp is visible."""
        sim = Simulator()
        cpu = sim.add(Firmware("cpu", synchronous_addresses=range(0x100, 0x104)))

        def device(comp):
            yield Advance(50e-6)
            yield Send("out", None)

        dev = sim.add(FunctionComponent("dev", device, ports={"out": "out"}))
        ctl = sim.add(InterruptControllerForTest("ctl", cpu.memory))
        sim.wire("irq", dev.port("out"), ctl.port("line0"))
        sim.run()
        # first read at ~10us (before write), second at ~110us local time,
        # but gated: it sees the device write from t=50us.
        assert cpu.samples[0] == 0
        assert cpu.samples[1] == 7

    def test_optimistic_detection_and_recovery(self):
        """The paper's dynamic flow: optimistic read runs ahead, the late
        write violates, the address is marked synchronous and the run is
        rewound — after which the result matches the static version."""
        sim = Simulator()
        cpu = sim.add(Firmware("cpu", sync_policy=SyncPolicy.OPTIMISTIC))

        def device(comp):
            yield Advance(50e-6)
            yield Send("out", None)

        dev = sim.add(FunctionComponent("dev", device, ports={"out": "out"}))
        ctl = sim.add(InterruptControllerForTest("ctl", cpu.memory))
        sim.wire("irq", dev.port("out"), ctl.port("line0"))
        sim.run_with_recovery(sync_tables=[cpu.sync_table])
        assert sim.recoveries >= 1
        assert 0x100 in cpu.sync_table.dynamic_marks
        assert cpu.samples == [0, 7]

    def test_checkpoint_restores_memory_in_place(self):
        sim = Simulator()
        cpu = sim.add(Firmware("cpu"))
        memory_object = cpu.memory
        cpu.memory.write(0x100, 5)
        sim.run(until=1e-6)
        cid = sim.checkpoint()
        cpu.memory.write(0x200, 123)
        sim.restore(cid)
        assert cpu.memory is memory_object
        assert cpu.memory.read(0x200) == 0

    def test_restore_replays_mem_reads(self):
        sim = Simulator()
        cpu = sim.add(Firmware("cpu"))
        cpu.memory.write(0x100, 9)
        sim.run()
        cid = sim.checkpoint()
        sim.restore(cid)
        assert cpu.samples == [9, 9]
        assert cpu.memory.read(0x104) == 10


class InterruptControllerForTest(InterruptController):
    """Writes value 7 into 0x100 when line0 fires."""

    def __init__(self, name, memory):
        super().__init__(name, memory, base_addr=0x300)
        self.add_port("line0")

    def on_event(self, port, time, value):
        self.memory.external_write(0x100, 7, time)


class TestInterruptController:
    def _system(self, *, policy=SyncPolicy.STATIC, static_marks=True):
        sim = Simulator()

        class Cpu(SoftwareComponent):
            def firmware(self):
                yield self.timer.block(alu=1)

        cpu = sim.add(Cpu("cpu", sync_policy=policy))
        ctl = InterruptController("ctl", cpu.memory, base_addr=0x400)
        ctl.add_line("uart")
        ctl.add_line("timer")
        if static_marks:
            ctl.mark_mailboxes_synchronous()
        sim.add(ctl)

        def device(comp):
            yield Advance(1.0)
            yield Send("out", 0xAB)
            yield Advance(1.0)
            yield Send("out", 0xCD)

        dev = sim.add(FunctionComponent("dev", device, ports={"out": "out"}))
        sim.wire("w", dev.port("out"), ctl.port("uart"))
        return sim, cpu, ctl

    def test_latches_payload_flag_and_count(self):
        sim, cpu, ctl = self._system()
        sim.run()
        uart = ctl.line("uart")
        assert cpu.memory.read(uart.data_addr) == 0xAB
        assert cpu.memory.read(uart.flag_addr) == 1
        assert cpu.memory.read(ctl.pending_count_addr) == 1
        assert ctl.delivered == 1
        assert ctl.dropped == 1     # second interrupt hit a full latch

    def test_ack_allows_next_interrupt(self):
        sim, cpu, ctl = self._system()
        sim.run(until=1.5)
        uart = ctl.line("uart")
        cpu.memory.write(uart.flag_addr, 0)   # firmware acks
        sim.run()
        assert cpu.memory.read(uart.data_addr) == 0xCD
        assert ctl.dropped == 0

    def test_duplicate_line_rejected(self):
        sim, cpu, ctl = self._system()
        with pytest.raises(ConfigurationError):
            ctl.add_line("uart")

    def test_mailboxes_marked_synchronous(self):
        sim, cpu, ctl = self._system()
        uart = ctl.line("uart")
        assert cpu.memory.table.is_synchronous(uart.flag_addr)
        assert cpu.memory.table.is_synchronous(uart.data_addr)
        assert cpu.memory.table.is_synchronous(ctl.pending_count_addr)
