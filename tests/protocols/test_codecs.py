"""Protocol codecs: framing, timing, reassembly, detail levels."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ProtocolError
from repro.protocols import (
    INCOMPLETE,
    ActionRule,
    AssertionCodec,
    PacketCodec,
    Protocol,
    ProtocolCodec,
    assertion_level,
    bus_protocol,
    default_library,
    dma_protocol,
    i2c_protocol,
    packet_protocol,
    reassemble_step,
    standard_library,
)


def roundtrip(codec, payload, transfer_id=("t", 1)):
    """Expand then reassemble; returns (payload, chunk_count, total_dt)."""
    partial = {}
    result = None
    chunks = 0
    total_dt = 0.0
    for dt, wire in codec.expand(payload, transfer_id):
        total_dt += dt
        chunks += 1
        outcome = reassemble_step(partial, wire)
        if outcome is not INCOMPLETE:
            result = outcome
    assert not partial, "transfer left partial state behind"
    return result, chunks, total_dt


class TestBusCodecs:
    def test_word_level_chunk_count(self):
        proto = bus_protocol()
        payload = bytes(range(256)) * 4     # 1024 bytes
        result, chunks, __ = roundtrip(proto.codec("word"), payload)
        assert result == payload
        assert chunks == 1024 // 4 + 1      # header + words

    def test_byte_level_chunk_count(self):
        proto = bus_protocol()
        payload = b"hello world"
        result, chunks, __ = roundtrip(proto.codec("byte"), payload)
        assert result == payload
        assert chunks == len(payload) + 1

    def test_transaction_is_single_chunk(self):
        proto = bus_protocol()
        payload = b"x" * 4096
        result, chunks, __ = roundtrip(proto.codec("transaction"), payload)
        assert result == payload
        assert chunks == 2                  # header + one body chunk

    def test_word_timing(self):
        proto = bus_protocol(cycle_time=1e-6)
        codec = proto.codec("word")
        assert codec.transfer_time(b"x" * 40) == pytest.approx(10e-6)

    def test_uneven_tail_word(self):
        proto = bus_protocol()
        payload = b"abcdef"                 # 1.5 words
        result, chunks, __ = roundtrip(proto.codec("word"), payload)
        assert result == payload
        assert chunks == 3

    def test_empty_payload(self):
        proto = bus_protocol()
        result, chunks, __ = roundtrip(proto.codec("word"), b"")
        assert result == b""

    def test_object_payload_rejected_below_transaction(self):
        proto = bus_protocol()
        with pytest.raises(ProtocolError):
            list(proto.codec("word").expand({"a": 1}, ("t", 1)))

    def test_object_payload_ok_at_transaction(self):
        proto = bus_protocol()
        result, __, ___ = roundtrip(proto.codec("transaction"), {"a": 1})
        assert result == {"a": 1}

    @given(st.binary(min_size=0, max_size=4096))
    @settings(max_examples=40)
    def test_roundtrip_property_word(self, payload):
        proto = bus_protocol()
        result, __, ___ = roundtrip(proto.codec("word"), payload)
        assert result == payload


class TestPacketCodec:
    def test_1kb_packets(self):
        codec = PacketCodec(1024)
        payload = b"z" * 66_000     # the paper's 66 KB page, roughly
        result, chunks, __ = roundtrip(codec, payload)
        assert result == payload
        assert chunks == -(-66_000 // 1024) + 1

    def test_packet_vs_word_chunk_ratio(self):
        """Packet passage moves ~256x fewer wire values than word passage."""
        proto = packet_protocol()
        payload = b"q" * 66_000
        __, word_chunks, ___ = roundtrip(proto.codec("word"), payload)
        __, pkt_chunks, ___ = roundtrip(proto.codec("packet"), payload)
        assert word_chunks / pkt_chunks > 200

    @given(st.integers(min_value=1, max_value=5000),
           st.integers(min_value=1, max_value=2048))
    @settings(max_examples=40)
    def test_roundtrip_any_packet_size(self, size, packet_size):
        codec = PacketCodec(packet_size)
        payload = bytes(i % 251 for i in range(size))
        result, __, ___ = roundtrip(codec, payload)
        assert result == payload


class TestI2C:
    def test_levels_exist(self):
        proto = i2c_protocol()
        assert proto.levels() == {"hardwareLevel", "byteLevel", "transaction"}

    def test_hardware_level_slower_than_byte_level(self):
        proto = i2c_protocol()
        payload = b"\x01\x02\x03\x04"
        hw = proto.codec("hardwareLevel").transfer_time(payload)
        by = proto.codec("byteLevel").transfer_time(payload)
        assert hw > by

    def test_hardware_roundtrip(self):
        proto = i2c_protocol()
        payload = bytes(range(16))
        result, chunks, __ = roundtrip(proto.codec("hardwareLevel"), payload)
        assert result == payload
        assert chunks == 16 + 1

    def test_bit_accurate_timing(self):
        proto = i2c_protocol(scl_hz=100_000)
        # 1 byte: start(1) + addr(9) + byte(9) + stop(1) = 20 bit slots.
        assert proto.codec("hardwareLevel").transfer_time(b"x") == \
            pytest.approx(20 / 100_000)


class TestDma:
    def test_burst_roundtrip(self):
        proto = dma_protocol(burst_words=4)
        payload = bytes(range(100))
        result, chunks, __ = roundtrip(proto.codec("burst"), payload)
        assert result == payload
        assert chunks == -(-100 // 16) + 1

    def test_block_single_chunk(self):
        proto = dma_protocol()
        result, chunks, __ = roundtrip(proto.codec("block"), b"x" * 999)
        assert result == b"x" * 999
        assert chunks == 2

    def test_block_faster_than_word(self):
        proto = dma_protocol()
        payload = b"x" * 4096
        assert proto.codec("block").transfer_time(payload) < \
            proto.codec("word").transfer_time(payload)


class TestAssertionCodec:
    def test_size_dependent_rules(self):
        codec = AssertionCodec([
            ActionRule(when="size <= 64", chunks="1", dt="1e-6"),
            ActionRule(when="size > 64", chunks="ceil(size / 1024)",
                       dt="5e-6 + chunk_size / 20e6"),
        ])
        result, chunks, __ = roundtrip(codec, b"tiny")
        assert result == b"tiny" and chunks == 1 + 1       # header + 1
        result, chunks, __ = roundtrip(codec, b"x" * 3000)
        assert result == b"x" * 3000 and chunks == 3 + 1   # header + 3

    def test_attach_to_protocol(self):
        proto = bus_protocol()
        assertion_level(proto, "custom", [ActionRule(dt="size / 1e6")])
        assert "custom" in proto.levels()
        result, __, total = roundtrip(proto.codec("custom"), b"x" * 1000)
        assert result == b"x" * 1000
        assert total == pytest.approx(1e-3)

    def test_no_matching_rule_raises(self):
        codec = AssertionCodec([ActionRule(when="size > 100")])
        with pytest.raises(ProtocolError):
            list(codec.expand(b"small", ("t", 1)))

    def test_unsafe_expression_rejected(self):
        codec = AssertionCodec([ActionRule(dt="__import__('os').getpid()")])
        with pytest.raises(ProtocolError):
            list(codec.expand(b"x", ("t", 1)))

    def test_negative_dt_rejected(self):
        codec = AssertionCodec([ActionRule(dt="-1.0")])
        with pytest.raises(ProtocolError):
            list(codec.expand(b"x", ("t", 1)))


class TestFramingErrors:
    def test_chunk_without_header(self):
        with pytest.raises(ProtocolError):
            reassemble_step({}, ("CHK", ("t", 1), 0, b"x"))

    def test_duplicate_chunk(self):
        partial = {}
        reassemble_step(partial, ("HDR", ("t", 1), "word", 2, "bytes"))
        reassemble_step(partial, ("CHK", ("t", 1), 0, b"a"))
        with pytest.raises(ProtocolError):
            reassemble_step(partial, ("CHK", ("t", 1), 0, b"a"))

    def test_unknown_tag(self):
        with pytest.raises(ProtocolError):
            reassemble_step({}, ("WAT", 1))

    def test_malformed_wire(self):
        with pytest.raises(ProtocolError):
            reassemble_step({}, "not-a-tuple")

    def test_interleaved_transfers(self):
        """Two concurrent transfers on one link reassemble independently."""
        partial = {}
        reassemble_step(partial, ("HDR", "a", "word", 1, "bytes"))
        reassemble_step(partial, ("HDR", "b", "word", 1, "bytes"))
        got_b = reassemble_step(partial, ("CHK", "b", 0, b"B"))
        got_a = reassemble_step(partial, ("CHK", "a", 0, b"A"))
        assert (got_a, got_b) == (b"A", b"B")


class TestLibrary:
    def test_standard_names(self):
        lib = standard_library()
        assert {"bus32", "bus8", "packet", "i2c", "i2c-fast", "dma"} <= \
            set(lib.names())

    def test_get_returns_fresh_instances(self):
        lib = standard_library()
        assert lib.get("bus32") is not lib.get("bus32")

    def test_unknown_protocol(self):
        with pytest.raises(ProtocolError):
            standard_library().get("nope")

    def test_duplicate_register(self):
        lib = standard_library()
        with pytest.raises(ProtocolError):
            lib.register("bus32", lambda name: None)
        lib.register("bus32", lambda name: bus_protocol(name), replace=True)

    def test_default_library_is_shared(self):
        assert default_library() is default_library()

    def test_protocol_requires_codecs(self):
        with pytest.raises(ProtocolError):
            Protocol("empty", {})

    def test_default_level_validated(self):
        with pytest.raises(ProtocolError):
            Protocol("p", {"a": ProtocolCodec()}, default_level="zzz")
