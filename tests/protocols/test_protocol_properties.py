"""Property-based protocol laws: every codec, every level.

Three invariants must hold for any protocol codec:

1. **roundtrip** — expand then reassemble returns the payload;
2. **timing sanity** — transfer time is finite, non-negative, and
   monotone in payload size;
3. **framing conservation** — chunk count equals what the header declares.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols import (
    INCOMPLETE,
    ActionRule,
    AssertionCodec,
    bus_protocol,
    dma_protocol,
    i2c_protocol,
    packet_protocol,
    reassemble_step,
)


def all_byte_codecs():
    """Every (protocol, level) pair that carries byte payloads."""
    pairs = []
    for protocol in (bus_protocol(), packet_protocol(), i2c_protocol(),
                     dma_protocol()):
        for level in sorted(protocol.levels()):
            pairs.append((f"{protocol.name}/{level}", protocol.codec(level)))
    pairs.append(("assertion/custom", AssertionCodec([
        ActionRule(when="size <= 16", chunks="1", dt="1e-6"),
        ActionRule(when="size > 16", chunks="ceil(size / 64)",
                   dt="1e-6 + chunk_size / 1e6"),
    ])))
    return pairs


CODECS = all_byte_codecs()


def full_roundtrip(codec, payload):
    partial = {}
    result = None
    chunk_events = 0
    total_dt = 0.0
    for dt, wire in codec.expand(payload, ("t", 1)):
        assert dt >= 0.0
        total_dt += dt
        outcome = reassemble_step(partial, wire)
        chunk_events += 1
        if outcome is not INCOMPLETE:
            result = outcome
    assert not partial
    return result, chunk_events, total_dt


class TestRoundtripLaw:
    @pytest.mark.parametrize("label,codec", CODECS,
                             ids=[label for label, __ in CODECS])
    @given(payload=st.binary(min_size=0, max_size=600))
    @settings(max_examples=15, deadline=None)
    def test_roundtrip(self, label, codec, payload):
        result, __, ___ = full_roundtrip(codec, payload)
        assert result == payload

    @pytest.mark.parametrize("label,codec", CODECS,
                             ids=[label for label, __ in CODECS])
    def test_empty_payload(self, label, codec):
        result, __, ___ = full_roundtrip(codec, b"")
        assert result == b""


class TestTimingLaw:
    @pytest.mark.parametrize("label,codec", CODECS,
                             ids=[label for label, __ in CODECS])
    @given(size=st.integers(min_value=1, max_value=500))
    @settings(max_examples=15, deadline=None)
    def test_monotone_in_size(self, label, codec, size):
        small = codec.transfer_time(b"x" * size)
        large = codec.transfer_time(b"x" * (size + 64))
        assert 0 <= small <= large

    @pytest.mark.parametrize("label,codec", CODECS,
                             ids=[label for label, __ in CODECS])
    def test_wire_bytes_at_least_payload_info(self, label, codec):
        payload = b"q" * 300
        assert codec.wire_bytes(payload) > 0


class TestFramingLaw:
    @pytest.mark.parametrize("label,codec", CODECS,
                             ids=[label for label, __ in CODECS])
    @given(payload=st.binary(min_size=1, max_size=300))
    @settings(max_examples=10, deadline=None)
    def test_header_declares_exact_chunk_count(self, label, codec, payload):
        wires = [wire for __, wire in codec.expand(payload, ("t", 2))]
        header = wires[0]
        assert header[0] == "HDR"
        assert header[3] == len(wires) - 1      # declared == actual chunks

    @pytest.mark.parametrize("label,codec", CODECS,
                             ids=[label for label, __ in CODECS])
    @given(payload=st.binary(min_size=2, max_size=200),
           seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_out_of_order_chunks_still_reassemble(self, label, codec,
                                                  payload, seed):
        """Chunks may arrive reordered (two nets racing): indices make
        reassembly order-insensitive once the header has arrived."""
        import random
        wires = [wire for __, wire in codec.expand(payload, ("t", 3))]
        header, chunks = wires[0], wires[1:]
        random.Random(seed).shuffle(chunks)
        partial = {}
        assert reassemble_step(partial, header) is INCOMPLETE or not chunks
        result = INCOMPLETE
        for wire in chunks:
            result = reassemble_step(partial, wire)
        if chunks:
            assert result == payload
