"""The external-tool wrapper and its wire protocol."""

import textwrap

import pytest

from repro.core import Advance, FunctionComponent, Receive, Send, Simulator
from repro.tools import ExternalToolComponent, ToolError, python_tool_argv

#: A legacy "filter tool": squares every delivered integer, with a fixed
#: compute delay, and halts on a negative input.  Supports state save.
FILTER_TOOL = textwrap.dedent("""
    import json, sys

    total = 0

    def reply(**msg):
        sys.stdout.write(json.dumps(msg) + "\\n")
        sys.stdout.flush()

    for line in sys.stdin:
        msg = json.loads(line)
        op = msg["op"]
        if op == "init":
            reply(op="log", text="filter ready")
            reply(op="yield")
        elif op == "deliver":
            value = msg["value"]
            if value < 0:
                reply(op="halt")
                continue
            total += value
            reply(op="advance", dt=0.25)
            reply(op="send", port="out", value=value * value)
            reply(op="yield")
        elif op == "save":
            reply(op="state", state={"total": total})
        elif op == "restore":
            total = msg["state"]["total"]
            reply(op="ok")
        elif op == "quit":
            break
""")

BROKEN_TOOL = "import sys\nsys.exit(3)\n"

GARBAGE_TOOL = textwrap.dedent("""
    import sys
    for line in sys.stdin:
        sys.stdout.write("this is not json\\n")
        sys.stdout.flush()
""")


@pytest.fixture
def filter_tool(tmp_path):
    path = tmp_path / "filter_tool.py"
    path.write_text(FILTER_TOOL)
    return str(path)


def build_system(tool_path, values, *, supports_state=False):
    sim = Simulator()
    tool = ExternalToolComponent(
        "tool", python_tool_argv(tool_path),
        supports_state=supports_state)
    sim.add(tool)

    def feeder(comp):
        for value in values:
            yield Advance(1.0)
            yield Send("out", value)

    def collector(comp):
        comp.got = []
        while True:
            t, v = yield Receive("in")
            comp.got.append((t, v))

    feed = sim.add(FunctionComponent("feed", feeder, ports={"out": "out"}))
    coll = sim.add(FunctionComponent("coll", collector, ports={"in": "in"}))
    sim.wire("to_tool", feed.port("out"), tool.port("in"))
    sim.wire("from_tool", tool.port("out"), coll.port("in"))
    return sim, tool, coll


class TestProtocol:
    def test_tool_transforms_traffic(self, filter_tool):
        sim, tool, coll = build_system(filter_tool, [2, 3, 4])
        try:
            sim.run()
            assert [v for __, v in coll.got] == [4, 9, 16]
            # tool's advance shows in the arrival times
            assert [t for t, __ in coll.got] == [1.25, 2.25, 3.25]
            assert tool.tool_log == ["filter ready"]
            assert tool.deliveries == 3
        finally:
            tool.close()

    def test_halt_action(self, filter_tool):
        sim, tool, coll = build_system(filter_tool, [2, -1, 5])
        try:
            sim.run()
            assert [v for __, v in coll.got] == [4]    # halted after -1
            assert tool.halted
        finally:
            tool.close()

    def test_close_is_idempotent(self, filter_tool):
        sim, tool, coll = build_system(filter_tool, [1])
        sim.run()
        tool.close()
        tool.close()

    def test_dead_tool_raises(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text(BROKEN_TOOL)
        sim, tool, coll = build_system(str(path), [1])
        with pytest.raises(ToolError):
            sim.run()

    def test_garbage_protocol_raises(self, tmp_path):
        path = tmp_path / "garbage.py"
        path.write_text(GARBAGE_TOOL)
        sim, tool, coll = build_system(str(path), [1])
        with pytest.raises(ToolError):
            sim.run()
        tool.close()

    def test_missing_binary(self):
        sim = Simulator()
        tool = sim.add(ExternalToolComponent(
            "tool", ["/no/such/binary-xyz"]))
        with pytest.raises(ToolError):
            sim.run()


class TestToolCheckpointing:
    def test_stateful_tool_rewinds(self, filter_tool):
        """A tool implementing save/restore participates in rollback."""
        sim, tool, coll = build_system(filter_tool, [2, 3, 4, 5],
                                       supports_state=True)
        try:
            sim.run(until=2.5)
            cid = sim.checkpoint()
            sim.run()
            full = [v for __, v in coll.got]
            assert full == [4, 9, 16, 25]
            sim.restore(cid)
            assert [v for __, v in coll.got] == [4, 9]
            sim.run()
            assert [v for __, v in coll.got] == full
        finally:
            tool.close()
