"""The batched fast path: coalescing, accounting, grants, copy elision.

Unit-level coverage for ISSUE 3's tentpole — :class:`SendBatcher` queue
bookkeeping, :class:`BatchFrame` wire format, per-frame accounting (one
latency charge no matter how many messages ride along), grant-push
frames, and the copy-elision rule (immutable payloads are shared, not
deep-copied, through the simulated wire).
"""

import pytest

from repro.core import TransportError
from repro.core.fastcopy import is_immutable
from repro.observability import Telemetry
from repro.transport import (
    LAN,
    InMemoryTransport,
    LatencyModel,
    Message,
    MessageKind,
    NetworkAccounting,
    TcpTransport,
)
from repro.transport.batch import SendBatcher
from repro.transport.message import BatchFrame, decode_any, encode_batch

from .test_transport import _msg, _poll_until


class TestSendBatcher:
    def test_enqueue_preserves_send_order(self):
        batcher = SendBatcher()
        for i in range(5):
            batcher.enqueue("a", "b", _msg(payload=i))
        [(key, members)] = batcher.take()
        assert key == ("a", "b")
        assert [m.payload for m in members] == list(range(5))

    def test_take_is_sorted_and_filtered(self):
        batcher = SendBatcher()
        batcher.enqueue("b", "c", _msg(src="b", dst="c"))
        batcher.enqueue("a", "c", _msg(src="a", dst="c"))
        batcher.enqueue("a", "d", _msg(src="a", dst="d"))
        keys = [key for key, __ in batcher.take(dst="c")]
        assert keys == [("a", "c"), ("b", "c")]   # deterministic order
        assert batcher.pending() == 1             # ("a", "d") untouched
        assert batcher.pending("d") == 1

    def test_take_removes_what_it_returns(self):
        batcher = SendBatcher()
        batcher.enqueue("a", "b", _msg())
        assert batcher.take()
        assert batcher.take() == []
        assert batcher.pending() == 0

    def test_clear_by_node_touches_both_directions(self):
        batcher = SendBatcher()
        batcher.enqueue("a", "b", _msg())
        batcher.enqueue("b", "a", _msg(src="b", dst="a"))
        batcher.enqueue("c", "d", _msg(src="c", dst="d"))
        assert batcher.clear("a") == 2
        assert batcher.pending() == 1
        assert batcher.clear() == 1


class TestBatchFrameWireFormat:
    def test_roundtrip(self):
        frame = BatchFrame("a", "b",
                           [_msg(payload=i) for i in range(3)],
                           [_msg(kind=MessageKind.SAFE_TIME_GRANT)])
        again = decode_any(encode_batch(frame))
        assert isinstance(again, BatchFrame)
        assert (again.src, again.dst) == ("a", "b")
        assert [m.payload for m in again.messages] == [0, 1, 2]
        assert len(again) == 4

    def test_decode_any_accepts_plain_messages(self):
        from repro.transport import encode
        single = decode_any(encode(_msg(payload="x")))
        assert isinstance(single, Message)
        assert single.payload == "x"

    def test_decode_any_rejects_foreign_objects(self):
        import pickle
        with pytest.raises(TransportError):
            decode_any(pickle.dumps({"not": "a frame"}))

    def test_unpicklable_batch_raises_transport_error(self):
        bad = BatchFrame("a", "b", [_msg(payload=lambda: None)])
        with pytest.raises(TransportError):
            encode_batch(bad)


class TestFrameAccounting:
    def test_one_frame_many_messages_one_latency_charge(self):
        model = LatencyModel("m", latency=0.5)
        batched = NetworkAccounting(model)
        batched.record_frame("a", "b", 1000, 8)
        unbatched = NetworkAccounting(model)
        for __ in range(8):
            unbatched.record("a", "b", 125)
        assert batched.total_messages == unbatched.total_messages == 8
        assert batched.total_bytes == unbatched.total_bytes == 1000
        assert batched.total_frames == 1
        assert unbatched.total_frames == 8
        assert batched.total_delay == pytest.approx(0.5)
        assert unbatched.total_delay == pytest.approx(4.0)

    def test_frame_telemetry_counters(self):
        telemetry = Telemetry()
        acc = NetworkAccounting(LAN)
        acc.telemetry = telemetry
        acc.record_frame("a", "b", 640, 4)
        counters = telemetry.registry.counters
        assert counters["transport.frames_sent"].value == 1
        assert counters["transport.messages"].value == 4
        assert counters["transport.bytes_on_wire"].value == 640
        hist = telemetry.registry.histograms["transport.batch_size"]
        assert hist.count == 1 and hist.max == 4

    def test_grant_only_frames_skip_the_batch_size_histogram(self):
        telemetry = Telemetry()
        acc = NetworkAccounting(LAN)
        acc.telemetry = telemetry
        acc.record_frame("a", "b", 128, 0)
        assert telemetry.registry.counters["transport.frames_sent"].value == 1
        assert "transport.batch_size" not in telemetry.registry.histograms


class TestInMemoryBatching:
    def _transport(self):
        t = InMemoryTransport(batching=True)
        t.register("a")
        t.register("b")
        return t

    def test_sends_coalesce_into_one_frame_at_poll(self):
        t = self._transport()
        for i in range(6):
            t.send(_msg(payload=i))
        assert t.pending("b") == 6            # queued, not yet on the wire
        assert t.accounting.total_frames == 0
        got = [m.payload for m in t.poll("b")]
        assert got == list(range(6))          # FIFO preserved
        assert t.accounting.total_frames == 1
        assert t.accounting.total_messages == 6

    def test_frame_bytes_smaller_than_per_message_frames(self):
        batched = self._transport()
        plain = InMemoryTransport()
        plain.register("a")
        plain.register("b")
        for i in range(10):
            batched.send(_msg(payload=("tick", i)))
            plain.send(_msg(payload=("tick", i)))
        batched.poll("b")
        plain.poll("b")
        assert batched.accounting.total_bytes < plain.accounting.total_bytes

    def test_call_flushes_both_directions_first(self):
        t = self._transport()
        seen = []
        t._call_handlers["b"] = lambda m: (
            seen.append((t.batcher.pending(), len(t._inboxes["b"]))),
            m.reply(MessageKind.SAFE_TIME_REPLY, time=0.0))[1]
        t.send(_msg(payload="queued"))
        t.call(_msg(kind=MessageKind.SAFE_TIME_REQUEST))
        # the queued data message crossed the wire before the handler ran:
        # the batch queue was empty and b's inbox held the data message.
        assert seen == [(0, 1)]

    def test_push_grants_delivers_a_zero_message_frame(self):
        t = self._transport()
        grant = Message(kind=MessageKind.SAFE_TIME_GRANT, src="a", dst="b",
                        channel="ch", time=3.0, payload=(1, 1))
        assert t.push_grants("a", "b", [grant])
        assert t.accounting.total_frames == 1
        assert t.accounting.total_messages == 0
        got = t.poll("b")
        assert [m.kind for m in got] == [MessageKind.SAFE_TIME_GRANT]

    def test_push_grants_refused_when_not_applicable(self):
        t = self._transport()
        grant = Message(kind=MessageKind.SAFE_TIME_GRANT, src="a", dst="b",
                        channel="ch", time=1.0)
        assert not t.push_grants("a", "b", [])          # nothing to push
        assert not t.push_grants("a", "ghost", [grant])  # unknown dst
        t.batching = False
        assert not t.push_grants("a", "b", [grant])      # batching off
        assert t.accounting.total_frames == 0

    def test_unregister_drops_queued_batches(self):
        t = self._transport()
        t.send(_msg(payload=1))
        t.unregister("b")
        assert t.batcher.pending() == 0


class TestCopyElision:
    def test_mutable_payloads_still_isolated(self):
        """Batching must not weaken the wire-simulation guarantee for
        payloads that could actually be aliased."""
        t = InMemoryTransport(batching=True)
        t.register("a")
        t.register("b")
        payload = {"mutable": [1, 2]}
        assert not is_immutable(payload)
        t.send(_msg(payload=payload))
        payload["mutable"].append(3)          # mutate after send
        delivered = t.poll("b")[0].payload
        assert delivered["mutable"] == [1, 2]

    def test_immutable_payloads_are_shared_not_copied(self):
        t = InMemoryTransport(batching=True)
        t.register("a")
        t.register("b")
        payload = ("word", 17, b"bytes")
        assert is_immutable(payload)
        t.send(_msg(payload=payload))
        delivered = t.poll("b")[0].payload
        assert delivered is payload           # elided the encode/decode

    def test_elision_requires_batching(self):
        """The per-message path always simulates the wire."""
        t = InMemoryTransport()
        t.register("a")
        t.register("b")
        payload = ("word", 17)
        t.send(_msg(payload=payload))
        assert t.poll("b")[0].payload is not payload


class TestTcpBatching:
    def test_coalesced_sends_arrive_in_order(self):
        with TcpTransport() as t:
            t.batching = True
            t.register("a")
            t.register("b")
            for i in range(10):
                t.send(_msg(payload=i))
            got = _poll_until(t, "b", 10)
            assert [m.payload for m in got] == list(range(10))
            link = t.accounting.links[("a", "b")]
            assert link.messages == 10
            assert link.frames < 10           # genuinely coalesced

    def test_push_grants_over_sockets(self):
        with TcpTransport() as t:
            t.batching = True
            t.register("a")
            t.register("b")
            grant = Message(kind=MessageKind.SAFE_TIME_GRANT, src="a",
                            dst="b", channel="ch", time=2.0, payload=(0, 0))
            assert t.push_grants("a", "b", [grant])
            got = _poll_until(t, "b", 1)
            assert got[0].kind is MessageKind.SAFE_TIME_GRANT
