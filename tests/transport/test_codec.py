"""Binary wire codec: round-trips, hostile input, cross-transport parity.

Three layers of assurance:

* every :class:`MessageKind` and every payload shape the protocol
  actually sends round-trips bit-faithfully (including the pickle
  fallback for payloads the codec has no schema for),
* hostile bytes — truncations, random corruption, stale pickle frames,
  future codec versions, absurd container counts — always surface as
  :class:`TransportError`, never as a hang or a foreign exception,
* the same traffic decoded off the in-memory, TCP and shared-memory
  transports is identical message-for-message.
"""

import math
import pickle
import random
import time as _time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TransportError
from repro.transport import codec
from repro.transport.codec import (
    MAGIC,
    VERSION,
    decode,
    decode_any,
    encode,
    encode_batch,
    wire_size,
)
from repro.transport.message import BatchFrame, Message, MessageKind


def _msg(kind=MessageKind.SIGNAL, src="alpha", dst="beta", channel="bus",
         time=1.25, payload=("sub", "net", 1), **kwargs):
    return Message(kind=kind, src=src, dst=dst, channel=channel, time=time,
                   payload=payload, **kwargs)


#: One representative message per kind, shaped like real protocol
#: traffic (the hot kinds exercise their dedicated payload schemas).
KIND_EXAMPLES = {
    MessageKind.SIGNAL: _msg(payload=("engine", "clk", True)),
    MessageKind.SAFE_TIME_REQUEST: _msg(
        kind=MessageKind.SAFE_TIME_REQUEST, channel=None, request_id=42,
        payload=("alpha", "gamma", ("alpha", "beta", "gamma"))),
    MessageKind.SAFE_TIME_REPLY: _msg(
        kind=MessageKind.SAFE_TIME_REPLY, channel=None, request_id=42,
        payload=(3, 7)),
    MessageKind.SAFE_TIME_GRANT: _msg(
        kind=MessageKind.SAFE_TIME_GRANT, channel=None, payload=(0, 0)),
    MessageKind.MARK: _msg(
        kind=MessageKind.MARK, channel=None,
        payload={"snapshot": "s1", "cut": 4.0}),
    MessageKind.RESTORE: _msg(
        kind=MessageKind.RESTORE, channel=None, payload="s1"),
    MessageKind.HW_CALL: _msg(
        kind=MessageKind.HW_CALL, request_id=9,
        payload=("probe", (1, 2, 3))),
    MessageKind.HW_REPLY: _msg(
        kind=MessageKind.HW_REPLY, request_id=9, payload=b"\x00\xff"),
    MessageKind.CONTROL: _msg(
        kind=MessageKind.CONTROL, channel=None,
        payload=("pause", {"until": 2.5})),
}


class TestRoundTrip:
    @pytest.mark.parametrize("kind", list(MessageKind),
                             ids=lambda k: k.value)
    def test_every_kind_round_trips_exactly(self, kind):
        message = KIND_EXAMPLES[kind]
        again = decode(encode(message))
        assert again == message
        assert type(again.payload) is type(message.payload)

    def test_full_header_round_trips(self):
        message = _msg(time=123.456, epoch=3, msg_id=9001, request_id=77,
                       trace=("alpha:1", "alpha:2", "alpha:1", 4))
        again = decode(encode(message))
        assert again == message
        assert again.trace == ("alpha:1", "alpha:2", "alpha:1", 4)

    def test_chain_root_trace_has_no_parent(self):
        message = _msg(trace=("alpha:1", "alpha:1", None, 0))
        assert decode(encode(message)).trace == ("alpha:1", "alpha:1", None, 0)

    def test_empty_strings_and_empty_containers(self):
        message = Message(MessageKind.CONTROL, src="", dst="", channel="",
                          payload=("", (), [], {}, b""))
        assert decode(encode(message)) == message

    def test_non_ascii_and_surrogates(self):
        message = _msg(src="nœud-α", dst="ノード", channel="канал",
                       payload=("süb", "nét", "payload-𐏿"))
        again = decode(encode(message))
        assert again == message

    def test_huge_payload(self):
        message = _msg(payload=("s", "n", b"\xaa" * 300_000))
        blob = encode(message)
        assert len(blob) > 300_000
        assert decode(blob) == message

    def test_float_specials(self):
        for value in (0.0, -0.0, math.inf, -math.inf, 1e-300, 1e300):
            again = decode(encode(_msg(payload=("s", "n", value))))
            assert again.payload[2] == value
            assert math.copysign(1, again.payload[2]) == math.copysign(1, value)
        nan = decode(encode(_msg(payload=("s", "n", math.nan))))
        assert math.isnan(nan.payload[2])

    def test_out_of_range_ints_take_the_pickle_leaf(self):
        for value in (1 << 70, -(1 << 70), (1 << 63), -(1 << 63) - 1):
            assert decode(encode(_msg(payload=("s", "n", value)))).payload[2] \
                == value

    def test_boundary_ints_stay_varint(self):
        for value in ((1 << 63) - 1, -(1 << 63), 0, -1, 1):
            assert decode(encode(_msg(payload=("s", "n", value)))).payload[2] \
                == value

    def test_pickle_fallback_payloads(self):
        for payload in (complex(1, 2), {3, 4}, frozenset({"x"}),
                        bytearray(b"mut")):
            again = decode(encode(_msg(kind=MessageKind.CONTROL,
                                       channel=None, payload=payload)))
            assert again.payload == payload
            assert type(again.payload) is type(payload)

    def test_bool_int_fidelity_survives_the_wire(self):
        # bools are not flattened to ints and vice versa — consumers
        # branch on exact types after _through_wire deep copies.
        again = decode(encode(_msg(payload=("s", "n", (True, 1, 0, False)))))
        assert [type(v) for v in again.payload[2]] == [bool, int, int, bool]

    def test_nested_message_payload(self):
        inner = _msg(payload=("s", "n", 5), msg_id=3)
        outer = _msg(kind=MessageKind.CONTROL, channel=None,
                     payload=("spill", 2, inner))
        again = decode(encode(outer))
        assert again.payload[2] == inner

    @settings(max_examples=200, deadline=None)
    @given(payload=st.recursive(
        st.none() | st.booleans()
        | st.integers(min_value=-(1 << 80), max_value=1 << 80)
        | st.floats(allow_nan=False) | st.text() | st.binary(),
        lambda children: (
            st.lists(children, max_size=4)
            | st.lists(children, max_size=4).map(tuple)
            | st.dictionaries(st.text(max_size=8), children, max_size=4)),
        max_leaves=25))
    def test_property_payload_round_trip(self, payload):
        message = _msg(kind=MessageKind.CONTROL, channel=None,
                       payload=payload)
        assert decode(encode(message)) == message

    @settings(max_examples=100, deadline=None)
    @given(src=st.text(min_size=1), dst=st.text(min_size=1),
           time=st.floats(allow_nan=False), epoch=st.integers(0, 1 << 40),
           msg_id=st.integers(0, 1 << 40))
    def test_property_header_round_trip(self, src, dst, time, epoch, msg_id):
        message = Message(MessageKind.SIGNAL, src, dst, channel=None,
                          time=time, payload=None, epoch=epoch,
                          msg_id=msg_id)
        assert decode(encode(message)) == message


class TestBatchFrames:
    def test_batch_round_trips(self):
        messages = [_msg(time=float(i), payload=("sub", "net", i))
                    for i in range(10)]
        grants = [KIND_EXAMPLES[MessageKind.SAFE_TIME_GRANT]]
        frame = BatchFrame(src="alpha", dst="beta", messages=messages,
                           grants=grants, epoch=2)
        again = decode_any(encode_batch(frame))
        assert isinstance(again, BatchFrame)
        assert again.messages == messages
        assert again.grants == grants
        assert (again.src, again.dst, again.epoch) == ("alpha", "beta", 2)

    def test_empty_batch(self):
        frame = BatchFrame(src="a", dst="b", messages=[], grants=[])
        again = decode_any(encode_batch(frame))
        assert again.messages == [] and again.grants == []

    def test_interning_amortises_repeated_names(self):
        """A 50-signal batch between one pair of nodes spells each name
        once: the whole frame costs far less than 50 single frames, and
        far less than the pickle encoding it replaced."""
        messages = [_msg(time=float(i), payload=("subsystem", "net", i))
                    for i in range(50)]
        frame = BatchFrame(src="alpha", dst="beta", messages=messages,
                           grants=[])
        batched = len(encode_batch(frame))
        singles = sum(len(encode(m)) for m in messages)
        pickled = len(pickle.dumps(frame, pickle.HIGHEST_PROTOCOL))
        assert batched < 0.5 * singles
        assert batched < pickled / 3
        assert decode_any(encode_batch(frame)).messages == messages

    def test_decode_rejects_batch_where_message_expected(self):
        frame = BatchFrame(src="a", dst="b", messages=[], grants=[])
        with pytest.raises(TransportError, match="message frame"):
            decode(encode_batch(frame))


class TestWireEconomy:
    def test_signal_frame_beats_pickle_3x(self):
        message = _msg(payload=("engine", "clk", 1), msg_id=12, epoch=1)
        assert len(pickle.dumps(message, pickle.HIGHEST_PROTOCOL)) \
            >= 3 * wire_size(message)

    def test_safe_time_frames_beat_pickle_3x(self):
        for kind in (MessageKind.SAFE_TIME_REQUEST,
                     MessageKind.SAFE_TIME_REPLY,
                     MessageKind.SAFE_TIME_GRANT):
            message = KIND_EXAMPLES[kind]
            assert len(pickle.dumps(message, pickle.HIGHEST_PROTOCOL)) \
                >= 3 * wire_size(message)

    def test_wire_size_matches_encoded_length(self):
        for message in KIND_EXAMPLES.values():
            assert wire_size(message) == len(encode(message))


class TestHostileInput:
    def _rich_frame(self):
        return encode(_msg(
            time=9.5, epoch=2, msg_id=17, request_id=5,
            trace=("alpha:1", "alpha:2", "alpha:1", 3),
            payload=("sub", "net", ("x", [1, 2.5], {"k": b"v"}))))

    def test_every_truncation_raises_transport_error(self):
        blob = self._rich_frame()
        for cut in range(len(blob)):
            with pytest.raises(TransportError):
                decode_any(blob[:cut])

    def test_trailing_garbage_raises(self):
        with pytest.raises(TransportError, match="trailing"):
            decode_any(self._rich_frame() + b"\x00")

    def test_pickle_frames_from_older_peers_fail_loudly(self):
        stale = pickle.dumps(_msg(), pickle.HIGHEST_PROTOCOL)
        with pytest.raises(TransportError, match="pickle"):
            decode_any(stale)

    def test_future_codec_version_fails_loudly(self):
        blob = bytearray(self._rich_frame())
        blob[1] = VERSION + 1
        with pytest.raises(TransportError, match="version"):
            decode_any(bytes(blob))

    def test_unknown_frame_type_and_kind_code(self):
        blob = bytearray(self._rich_frame())
        blob[2] = 99
        with pytest.raises(TransportError, match="frame type"):
            decode_any(bytes(blob))
        blob = bytearray(self._rich_frame())
        blob[3] = 250                       # kind code past the enum
        with pytest.raises(TransportError, match="kind code"):
            decode_any(bytes(blob))

    def test_absurd_container_count_rejected_quickly(self):
        """A corrupt count claiming 2**40 zero-byte items must be an
        error, not a decoder spin."""
        out = bytearray((MAGIC, VERSION, codec.FRAME_MESSAGE))
        out.append(MessageKind.SIGNAL.code)
        out.append(0)                                     # flags
        codec._put_str(out, "a", {})
        codec._put_str(out, "b", {"a": 0})
        out += codec._pack_f64(1.0)
        codec._put_uvarint(out, 0)                        # epoch
        codec._put_uvarint(out, 0)                        # msg_id
        out.append(codec.PAYLOAD_VALUE)
        out.append(codec._V_TUPLE)
        codec._put_uvarint(out, 1 << 40)                  # corrupt count
        start = _time.monotonic()
        with pytest.raises(TransportError, match="count"):
            decode_any(bytes(out))
        assert _time.monotonic() - start < 1.0

    def test_string_backreference_out_of_range(self):
        out = bytearray((MAGIC, VERSION, codec.FRAME_MESSAGE))
        out.append(MessageKind.SIGNAL.code)
        out.append(0)
        codec._put_uvarint(out, 8 << 1)     # back-ref into an empty table
        with pytest.raises(TransportError, match="back-reference"):
            decode_any(bytes(out))

    def test_varint_overflow_rejected(self):
        out = bytearray((MAGIC, VERSION, codec.FRAME_MESSAGE))
        out += b"\xff" * 12                 # continuation bits past 64 bits
        with pytest.raises(TransportError, match="overflow|kind code"):
            decode_any(bytes(out))

    def test_empty_frame(self):
        with pytest.raises(TransportError, match="empty"):
            decode_any(b"")

    def test_random_corruption_never_escapes_transport_error(self):
        """Flip bytes all over valid frames: the decoder either raises
        TransportError or yields a structurally valid frame — never a
        foreign exception, never a hang."""
        rng = random.Random(0xC0DEC)
        frames = [self._rich_frame(),
                  encode_batch(BatchFrame(
                      src="alpha", dst="beta",
                      messages=[_msg(time=float(i),
                                     payload=("sub", "net", i))
                                for i in range(5)],
                      grants=[KIND_EXAMPLES[MessageKind.SAFE_TIME_GRANT]]))]
        for blob in frames:
            for _ in range(400):
                mutated = bytearray(blob)
                for _ in range(rng.randint(1, 4)):
                    mutated[rng.randrange(len(mutated))] = rng.randrange(256)
                try:
                    decoded = decode_any(bytes(mutated))
                except TransportError:
                    continue
                assert isinstance(decoded, (Message, BatchFrame))


class TestCrossTransportEquivalence:
    """The same traffic crosses the in-memory, TCP and shared-memory
    data planes and decodes identically on the far side."""

    TRAFFIC = [
        ("engine", "clk", 1),
        ("engine", "clk", 2.5),
        ("engine", "bus", "väl-υε"),
        ("engine", "bus", b"\x00\x80\xff"),
        ("engine", "bus", ("nested", [1, None], {"k": True})),
        ("engine", "bus", complex(2, 3)),          # pickle fallback
    ]

    def _sends(self):
        return [Message(MessageKind.SIGNAL, "a", "b", channel="ch",
                        time=float(index), payload=payload)
                for index, payload in enumerate(self.TRAFFIC)]

    @staticmethod
    def _comparable(message):
        return (message.kind, message.src, message.dst, message.channel,
                message.time, message.payload, message.msg_id,
                message.epoch)

    def _via_inmemory(self):
        from repro.transport import InMemoryTransport
        transport = InMemoryTransport()
        transport.register("a")
        transport.register("b")
        for message in self._sends():
            transport.send(message)
        return transport.poll("b")

    def _via_tcp(self):
        from repro.transport import TcpTransport
        with TcpTransport() as transport:
            transport.register("a")
            transport.register("b")
            for message in self._sends():
                transport.send(message)
            return _poll_until(transport, "b", len(self.TRAFFIC))

    def _via_shm(self):
        from repro.transport.shm import (SharedMemoryTransport,
                                         create_ring_segment)
        t_a = SharedMemoryTransport()
        t_b = SharedMemoryTransport()
        segment = create_ring_segment(64 * 1024)
        try:
            t_a.register("a")
            t_b.register("b")
            t_a.set_peer("b", t_b.local_port("b"))
            t_b.set_peer("a", t_a.local_port("a"))
            t_a.attach_outbound_ring("a", "b", segment.name)
            t_b.attach_inbound_ring("a", "b", segment.name)
            for message in self._sends():
                t_a.send(message)
            return _poll_until(t_b, "b", len(self.TRAFFIC))
        finally:
            t_a.close()
            t_b.close()
            segment.close()
            segment.unlink()

    def test_all_three_data_planes_decode_identically(self):
        inmemory = [self._comparable(m) for m in self._via_inmemory()]
        tcp = [self._comparable(m) for m in self._via_tcp()]
        shm = [self._comparable(m) for m in self._via_shm()]
        assert len(inmemory) == len(self.TRAFFIC)
        assert inmemory == tcp == shm
        # The wire really deep-copied: payload values *and* exact types
        # survive intact (time doubles as the send index).
        for row in tcp:
            sent = self.TRAFFIC[int(row[4])]
            assert row[5] == sent
            assert type(row[5][2]) is type(sent[2])


def _poll_until(transport, name, count, timeout=5.0):
    collected = []
    deadline = _time.monotonic() + timeout
    while len(collected) < count and _time.monotonic() < deadline:
        collected.extend(transport.poll(name))
        _time.sleep(0.002)
    assert len(collected) >= count, f"only {len(collected)}/{count} arrived"
    return collected
