"""Differential tests: native codec primitives against the pure ones.

The C encoders (``put_uvarint``/``put_str``/``put_value``) must produce
*byte-identical* output to ``_put_uvarint_py``/``_put_str_py``/
``_put_value_py`` for every value, and the C ``Reader`` must accept
exactly the blobs ``_PyReader`` accepts — same decoded values, same
cursor positions, same :class:`TransportError` messages on corruption.
Byte identity is the property that makes the native build invisible on
the wire: a compiled node and a pure-python node exchange frames
without either noticing the other's backend.

Runs regardless of which backend the package itself bound (the
extension is imported directly), so both CI legs exercise it; skips
cleanly when the extension was never built.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

_core = pytest.importorskip(
    "repro._native._core",
    reason="native hot core not built "
           "(python setup.py build_ext --inplace)")

from repro.core.errors import TransportError
from repro.transport import codec
from repro.transport.message import Message, MessageKind

# The nested-message hooks are bound by codec.py only when the native
# backend is live there; bind them here too so V_MESSAGE payloads work
# under PIA_PURE=1 as well.  Re-binding with the same hooks is harmless.
_core.codec_bind(Message, codec._put_message, codec._read_message)


def _native_bytes(put, *args):
    out = bytearray()
    put(out, *args)
    return bytes(out)


def _pure_bytes(put, *args):
    out = bytearray()
    put(out, *args)
    return bytes(out)


_U64 = st.integers(min_value=0, max_value=2**64 - 1)

#: Scalars the tagged value codec handles natively, plus unbounded ints
#: so the pickle-fallback path for >64-bit magnitudes is exercised too.
_SCALARS = st.one_of(
    st.none(), st.booleans(), st.integers(),
    st.floats(allow_nan=False), st.text(max_size=24),
    st.binary(max_size=24))

_VALUES = st.recursive(
    _SCALARS,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=8), children, max_size=4)),
    max_leaves=24)


class TestUvarintParity:
    @given(_U64)
    @settings(max_examples=300, deadline=None)
    def test_encode_bytes_identical_and_cross_decode(self, value):
        native = _native_bytes(_core.put_uvarint, value)
        pure = _pure_bytes(codec._put_uvarint_py, value)
        assert native == pure
        for reader_cls in (_core.Reader, codec._PyReader):
            reader = reader_cls(native)
            assert reader.uvarint() == value
            assert reader.pos == len(native)

    def test_boundaries_stay_varint(self):
        for value in (0, 1, 127, 128, 2**63 - 1, 2**64 - 1):
            assert _native_bytes(_core.put_uvarint, value) == \
                _pure_bytes(codec._put_uvarint_py, value)

    @given(st.one_of(st.integers(max_value=-1),
                     st.integers(min_value=2**64)))
    @settings(max_examples=100, deadline=None)
    def test_out_of_range_rejected_identically(self, value):
        with pytest.raises(TransportError) as native_err:
            _core.put_uvarint(bytearray(), value)
        with pytest.raises(TransportError) as pure_err:
            codec._put_uvarint_py(bytearray(), value)
        assert str(native_err.value) == str(pure_err.value)

    @pytest.mark.parametrize("blob", [
        b"\x80",                      # continuation bit, then nothing
        b"\xff" * 10,                 # never terminates inside 64 bits
        b"\xff" * 9 + b"\x7f",        # terminates, but bits 64+ set
        b"\x80" * 9 + b"\x02",        # value 2**63 is fine...
        b"\x80" * 9 + b"\x7e",        # ...but the rest of that byte isn't
    ])
    def test_decoder_rejections_match(self, blob):
        results = []
        for reader_cls in (_core.Reader, codec._PyReader):
            reader = reader_cls(blob)
            try:
                results.append(("ok", reader.uvarint(), reader.pos))
            except TransportError as exc:
                results.append(("err", str(exc)))
        assert results[0] == results[1]


class TestStrInternParity:
    @given(st.lists(st.text(max_size=12), min_size=1, max_size=12))
    @settings(max_examples=200, deadline=None)
    def test_intern_table_bytes_identical(self, texts):
        """Repeats become back-references at identical indices."""
        native_out, pure_out = bytearray(), bytearray()
        native_tab, pure_tab = {}, {}
        for s in texts:
            _core.put_str(native_out, s, native_tab)
            codec._put_str_py(pure_out, s, pure_tab)
        assert bytes(native_out) == bytes(pure_out)
        assert native_tab == pure_tab
        for reader_cls in (_core.Reader, codec._PyReader):
            reader = reader_cls(bytes(native_out))
            assert [reader.strref() for _ in texts] == texts
            reader.done()


class TestValueCodecParity:
    @given(_VALUES)
    @settings(max_examples=300, deadline=None)
    def test_encode_bytes_identical_and_all_decodes_agree(self, value):
        native = _native_bytes(_core.put_value, value, {})
        pure = _pure_bytes(codec._put_value_py, value, {})
        assert native == pure
        decoded = []
        for reader_cls in (_core.Reader, codec._PyReader):
            reader = reader_cls(native)
            result = reader.value()
            reader.done()
            decoded.append(result)
        assert decoded[0] == decoded[1] == value
        assert type(decoded[0]) is type(decoded[1])

    def test_int64_boundaries_stay_tagged_ints(self):
        for value in (0, 1, -1, 2**63 - 1, -(2**63)):
            native = _native_bytes(_core.put_value, value, {})
            assert native == _pure_bytes(codec._put_value_py, value, {})
            assert native[0] == codec._V_INT

    def test_overflow_ints_fall_back_to_pickle_identically(self):
        for value in (2**63, -(2**63) - 1, 2**200, -(2**200)):
            native = _native_bytes(_core.put_value, value, {})
            assert native == _pure_bytes(codec._put_value_py, value, {})
            assert native[0] == codec._V_PICKLE
            reader = _core.Reader(native)
            assert reader.value() == value

    def test_nested_message_payload_parity(self):
        inner = Message(MessageKind.SIGNAL, "alpha", "beta", channel="bus",
                        time=1.25, msg_id=3, epoch=1,
                        payload=("engine", "clk", 1))
        native = _native_bytes(_core.put_value, inner, {})
        pure = _pure_bytes(codec._put_value_py, inner, {})
        assert native == pure
        for reader_cls in (_core.Reader, codec._PyReader):
            reader = reader_cls(native)
            clone = reader.value()
            reader.done()
            assert isinstance(clone, Message)
            assert clone.kind is inner.kind
            assert clone.payload == inner.payload

    @given(st.lists(st.text(max_size=6), min_size=0, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_shared_intern_table_across_values(self, texts):
        """One frame-scoped table serves every value in the frame."""
        native_out, pure_out = bytearray(), bytearray()
        native_tab, pure_tab = {}, {}
        for s in texts:
            _core.put_value(native_out, (s, s), native_tab)
            codec._put_value_py(pure_out, (s, s), pure_tab)
        assert bytes(native_out) == bytes(pure_out)


class TestReaderErrorParity:
    @pytest.mark.parametrize("blob", [
        b"",                                   # truncated tag
        bytes([codec._V_FLOAT]) + b"\x00" * 7,  # truncated f64
        bytes([codec._V_TUPLE]) + b"\xe8\x07",  # count 1000, nothing left
        bytes([codec._V_STR]) + b"\x02",        # back-ref into empty table
        bytes([codec._V_BYTES]) + b"\x09" + b"ab",  # length past end
        bytes([codec._V_PICKLE]) + b"\x02" + b"xx",  # unloadable pickle
        bytes([99]),                           # unknown tag
    ])
    def test_corruption_messages_match(self, blob):
        results = []
        for reader_cls in (_core.Reader, codec._PyReader):
            reader = reader_cls(blob)
            try:
                results.append(("ok", reader.value()))
            except TransportError as exc:
                results.append(("err", str(exc)))
        assert results[0] == results[1]
        assert results[0][0] == "err"

    def test_trailing_bytes_message_matches(self):
        blob = _native_bytes(_core.put_value, None, {}) + b"\x00\x00"
        results = []
        for reader_cls in (_core.Reader, codec._PyReader):
            reader = reader_cls(blob)
            reader.value()
            with pytest.raises(TransportError) as err:
                reader.done()
            results.append(str(err.value))
        assert results[0] == results[1]
        assert "trailing" in results[0]

    @given(st.binary(max_size=64))
    @settings(max_examples=300, deadline=None)
    def test_fuzzed_blobs_never_diverge(self, blob):
        """Arbitrary bytes: both readers accept with equal values or
        reject with equal errors — and the C one never crashes."""
        results = []
        for reader_cls in (_core.Reader, codec._PyReader):
            reader = reader_cls(blob)
            try:
                value = reader.value()
                reader.done()
                results.append(("ok", repr(value)))
            except TransportError as exc:
                results.append(("err", str(exc)))
        assert results[0] == results[1]
