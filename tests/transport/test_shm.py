"""Shared-memory data plane: ring mechanics, spill ordering, lifecycle.

The ring itself is exercised in-process (both cursors visible to the
test); the transport tests wire two :class:`SharedMemoryTransport`
instances through a real shared-memory segment plus loopback TCP for
the spill path, mirroring how the multiprocess coordinator wires a run.
"""

import time

import pytest

from repro.core import TransportError
from repro.observability import Telemetry
from repro.transport import Message, MessageKind
from repro.transport.shm import (
    DEFAULT_RING_CAPACITY,
    SharedMemoryTransport,
    ShmRing,
    create_ring_segment,
    open_spill_envelope,
    spill_envelope,
)


def _msg(src="a", dst="b", time=1.0, payload=None):
    return Message(kind=MessageKind.SIGNAL, src=src, dst=dst, channel="ch",
                   time=time, payload=payload)


def _poll_until(transport, name, count, timeout=5.0):
    got = []
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        got.extend(transport.poll(name))
        if len(got) >= count:
            return got
        time.sleep(0.002)
    raise AssertionError(f"only {len(got)}/{count} messages arrived")


class TestShmRing:
    def test_roundtrip_and_empty(self):
        ring = create_ring_segment(1024)
        consumer = ShmRing(ring.name)
        try:
            assert consumer.try_read() is None
            assert ring.try_write(b"hello")
            assert consumer.try_read() == (0, b"hello")
            assert consumer.try_read() is None
        finally:
            consumer.close()
            ring.close()
            ring.unlink()

    def test_wraparound_preserves_frames_and_order(self):
        """Thousands of varied-size frames through a ring far smaller
        than their total: every frame crosses intact, in order, across
        many physical wraparounds."""
        ring = create_ring_segment(256)
        consumer = ShmRing(ring.name)
        try:
            expected = [bytes([index % 251]) * (1 + index % 97)
                        for index in range(2000)]
            pending = list(expected)
            got = []
            while pending or len(got) < len(expected):
                while pending and ring.try_write(pending[0]):
                    pending.pop(0)
                frame = consumer.try_read()
                if frame is not None:
                    got.append(frame[1])
            assert got == expected
        finally:
            consumer.close()
            ring.close()
            ring.unlink()

    def test_full_ring_refuses_then_recovers(self):
        ring = create_ring_segment(64)
        consumer = ShmRing(ring.name)
        try:
            assert ring.try_write(b"x" * 40)
            assert not ring.try_write(b"y" * 40)     # no room yet
            assert consumer.try_read() == (0, b"x" * 40)
            assert ring.try_write(b"y" * 40)         # drained: fits now
            assert consumer.try_read() == (0, b"y" * 40)
        finally:
            consumer.close()
            ring.close()
            ring.unlink()

    def test_fits_ever_matches_capacity(self):
        ring = create_ring_segment(64)
        try:
            # 4-byte length prefix + 1 type byte + body must fit.
            assert ring.fits_ever(59)
            assert not ring.fits_ever(60)
        finally:
            ring.close()
            ring.unlink()

    def test_frame_type_tag_travels(self):
        ring = create_ring_segment(128)
        consumer = ShmRing(ring.name)
        try:
            assert ring.try_write(b"marker", frame_type=1)
            assert consumer.try_read() == (1, b"marker")
        finally:
            consumer.close()
            ring.close()
            ring.unlink()


class TestSpillEnvelope:
    def test_roundtrip(self):
        envelope = spill_envelope("a", "b", 7, b"payload")
        assert open_spill_envelope(envelope) == (7, b"payload")

    def test_ordinary_messages_are_not_spills(self):
        assert open_spill_envelope(_msg()) is None
        control = Message(kind=MessageKind.CONTROL, src="a", dst="b",
                          payload=("something-else", 1, b""))
        assert open_spill_envelope(control) is None


class TestSharedMemoryTransport:
    def _pair(self, ring_capacity=DEFAULT_RING_CAPACITY):
        """Two transports, an a->b ring between them, TCP both ways."""
        t_a = SharedMemoryTransport(ring_capacity=ring_capacity)
        t_b = SharedMemoryTransport(ring_capacity=ring_capacity)
        t_a.register("a")
        t_b.register("b")
        t_a.set_peer("b", t_b.local_port("b"))
        t_b.set_peer("a", t_a.local_port("a"))
        segment = create_ring_segment(ring_capacity)
        t_a.attach_outbound_ring("a", "b", segment.name)
        t_b.attach_inbound_ring("a", "b", segment.name)
        return t_a, t_b, segment

    def _teardown(self, t_a, t_b, segment):
        t_a.close()
        t_b.close()
        segment.close()
        segment.unlink()

    def test_ring_delivery_and_accounting(self):
        telemetry = Telemetry()
        t_a, t_b, segment = self._pair()
        t_a.attach_telemetry(telemetry)
        try:
            for index in range(5):
                t_a.send(_msg(time=float(index), payload=index))
            got = _poll_until(t_b, "b", 5)
            assert [m.payload for m in got] == list(range(5))
            counters = telemetry.registry.snapshot()["counters"]
            assert counters["transport.shm_frames"] == 5
            assert counters["transport.shm_bytes"] > 0
            # Wire counters keep balancing across the shm path, so the
            # multiprocess quiescence probe works unchanged.
            assert t_a.wire_out == 5
            assert t_b.wire_in == 5
        finally:
            self._teardown(t_a, t_b, segment)

    def test_oversized_frame_spills_over_tcp_in_order(self):
        telemetry = Telemetry()
        t_a, t_b, segment = self._pair(ring_capacity=2048)
        t_a.attach_telemetry(telemetry)
        try:
            t_a.send(_msg(time=1.0, payload="before"))
            t_a.send(_msg(time=2.0, payload="x" * 65536))  # cannot ever fit
            t_a.send(_msg(time=3.0, payload="after"))
            got = _poll_until(t_b, "b", 3)
            assert [m.time for m in got] == [1.0, 2.0, 3.0]
            assert got[1].payload == "x" * 65536
            counters = telemetry.registry.snapshot()["counters"]
            assert counters["transport.shm_spills"] == 1
            assert counters["transport.shm_frames"] == 2
        finally:
            self._teardown(t_a, t_b, segment)

    def test_links_without_rings_fall_back_to_tcp(self):
        """The reverse direction has no ring: plain TCP still works on
        the same transport pair (the remote-peer deployment shape)."""
        telemetry = Telemetry()
        t_a, t_b, segment = self._pair()
        t_b.attach_telemetry(telemetry)
        try:
            t_b.send(_msg(src="b", dst="a", payload="tcp-path"))
            got = _poll_until(t_a, "a", 1)
            assert got[0].payload == "tcp-path"
            counters = telemetry.registry.snapshot()["counters"]
            assert "transport.shm_frames" not in counters
        finally:
            self._teardown(t_a, t_b, segment)

    def test_duplicate_ring_attachment_rejected(self):
        t_a, t_b, segment = self._pair()
        try:
            with pytest.raises(TransportError):
                t_a.attach_outbound_ring("a", "b", segment.name)
            with pytest.raises(TransportError):
                t_b.attach_inbound_ring("a", "b", segment.name)
        finally:
            self._teardown(t_a, t_b, segment)

    def test_close_detaches_rings_and_stops_pumps(self):
        t_a, t_b, segment = self._pair()
        t_a.close()
        t_b.close()
        try:
            assert t_a.rings() == ()
            assert not any(thread.is_alive()
                           for thread in t_b._pump_threads.values())
        finally:
            segment.close()
            segment.unlink()
