"""TCP transport failure paths: dead peers, eviction, typed errors.

The deterministic experiments live on :class:`InMemoryTransport`; these
tests exercise the *real* failure modes of the socket transport — peers
closing mid-frame, refused connections, dead cached sockets — and the
resilience layer that turns them into retries and typed
:class:`LinkDown` errors instead of raw socket exceptions.
"""

import socket
import threading
import time

import pytest

from repro.core import (
    Advance,
    FunctionComponent,
    LinkDown,
    NodeFailure,
    Receive,
    RemoteCallError,
    Send,
    TransportError,
)
from repro.distributed import ThreadedCoSimulation
from repro.faults import FaultPlan, LinkFaults, NO_RETRY, NodeCrash, RetryPolicy
from repro.observability import Telemetry
from repro.transport import Message, MessageKind, TcpTransport
from repro.transport.tcp import _LENGTH, _recv_frame

#: Fail fast in tests: two attempts, no real sleeping.
FAST_RETRY = RetryPolicy(max_attempts=2, base_delay=0.001, jitter=0.0,
                         deadline=5.0)


def _msg(src="a", dst="b", time=1.0, payload=None, kind=MessageKind.SIGNAL):
    return Message(kind=kind, src=src, dst=dst, channel="ch", time=time,
                   payload=payload)


def _poll_until(transport, name, count, timeout=5.0):
    got = []
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        got.extend(transport.poll(name))
        if len(got) >= count:
            return got
        time.sleep(0.005)
    raise AssertionError(f"only {len(got)}/{count} messages arrived")


class TestFraming:
    def test_peer_closing_mid_frame_raises_connection_error(self):
        """A peer that dies after the length prefix must surface as a
        ConnectionError, never as a short read treated as success."""
        a, b = socket.socketpair()
        try:
            a.sendall(_LENGTH.pack(100) + b"only part of the frame")
            a.close()
            with pytest.raises(ConnectionError):
                _recv_frame(b)
        finally:
            b.close()

    def test_peer_closing_before_length_raises(self):
        a, b = socket.socketpair()
        try:
            a.close()
            with pytest.raises(ConnectionError):
                _recv_frame(b)
        finally:
            b.close()


class TestRegistration:
    def test_double_register_rejected(self):
        with TcpTransport() as transport:
            transport.register("a")
            with pytest.raises(TransportError):
                transport.register("a")

    def test_unregister_frees_the_name(self):
        with TcpTransport() as transport:
            transport.register("a")
            transport.unregister("a")
            transport.register("a")
            assert transport.nodes() == ["a"]

    def test_send_to_unknown_destination(self):
        with TcpTransport(retry_policy=FAST_RETRY) as transport:
            transport.register("a")
            with pytest.raises(TransportError):
                transport.send(_msg(dst="ghost"))


class TestDeadPeers:
    def test_call_against_dead_endpoint_raises_link_down(self):
        """The peer's listener is gone: every reconnect is refused and the
        caller gets a typed LinkDown after the attempt budget, not a raw
        ConnectionRefusedError."""
        with TcpTransport(retry_policy=FAST_RETRY) as transport:
            transport.register("a")
            transport.register("b", call_handler=lambda m: m.reply(
                MessageKind.SAFE_TIME_REPLY, time=0.0))
            transport._endpoints["b"].close()    # kill the listener only
            with pytest.raises(LinkDown) as err:
                transport.call(_msg(kind=MessageKind.SAFE_TIME_REQUEST))
            assert err.value.src == "a"
            assert err.value.dst == "b"
            assert err.value.attempts == FAST_RETRY.max_attempts

    def test_send_evicts_dead_cached_socket_and_reconnects(self):
        """A cached connection killed under us (NAT timeout, peer restart)
        must be evicted and transparently re-established."""
        telemetry = Telemetry()
        with TcpTransport(retry_policy=FAST_RETRY) as transport:
            transport.attach_telemetry(telemetry)
            transport.register("a")
            transport.register("b")
            transport.send(_msg(payload=1))
            _poll_until(transport, "b", 1)
            stale = transport._conns[("a", "b")]
            stale.sock.shutdown(socket.SHUT_RDWR)
            stale.sock.close()
            transport.send(_msg(payload=2))
            got = _poll_until(transport, "b", 1)
            assert got[0].payload == 2
            assert transport._conns[("a", "b")] is not stale
            assert telemetry.registry.counter("transport.evictions").value >= 1

    def test_no_retry_policy_fails_on_first_socket_error(self):
        with TcpTransport(retry_policy=NO_RETRY) as transport:
            transport.register("a")
            transport.register("b")
            transport.send(_msg(payload=1))
            _poll_until(transport, "b", 1)
            stale = transport._conns[("a", "b")]
            stale.sock.close()
            with pytest.raises(LinkDown) as err:
                transport.send(_msg(payload=2))
            assert err.value.attempts == 1

    def test_close_during_in_flight_traffic(self):
        """Tearing the transport down under a busy sender must end the
        sender promptly with a typed error, never a hang."""
        transport = TcpTransport(retry_policy=FAST_RETRY)
        transport.register("a")
        transport.register("b")
        outcome = {}

        def blast():
            sent = 0
            try:
                for i in range(100_000):
                    transport.send(_msg(payload=i))
                    sent += 1
            except (LinkDown, TransportError) as exc:
                outcome["error"] = exc
            outcome["sent"] = sent

        sender = threading.Thread(target=blast, daemon=True)
        sender.start()
        time.sleep(0.05)
        transport.close()
        sender.join(timeout=10.0)
        assert not sender.is_alive(), "sender hung after transport.close()"
        assert "error" in outcome
        assert outcome["sent"] < 100_000


class TestCallConnectionReuse:
    def test_repeated_calls_share_one_connection(self):
        """The regression: every call() used to open (and leak through
        teardown latency) a fresh socket.  N calls on a healthy link must
        dial exactly once."""
        telemetry = Telemetry()
        with TcpTransport() as transport:
            transport.attach_telemetry(telemetry)
            transport.register("a")
            transport.register("b", call_handler=lambda m: m.reply(
                MessageKind.SAFE_TIME_REPLY, time=m.time + 1.0))
            for index in range(20):
                reply = transport.call(_msg(
                    kind=MessageKind.SAFE_TIME_REQUEST, time=float(index)))
                assert reply.time == float(index) + 1.0
            assert telemetry.registry.counter(
                "transport.call_connects").value == 1
            assert set(transport._call_conns) == {("a", "b")}

    def test_dead_call_connection_is_evicted_and_redialled(self):
        with TcpTransport(retry_policy=FAST_RETRY) as transport:
            transport.register("a")
            transport.register("b", call_handler=lambda m: m.reply(
                MessageKind.SAFE_TIME_REPLY, time=0.0))
            transport.call(_msg(kind=MessageKind.SAFE_TIME_REQUEST))
            stale = transport._call_conns[("a", "b")]
            stale.sock.shutdown(socket.SHUT_RDWR)
            stale.sock.close()
            reply = transport.call(_msg(kind=MessageKind.SAFE_TIME_REQUEST))
            assert reply.kind is MessageKind.SAFE_TIME_REPLY
            assert transport._call_conns[("a", "b")] is not stale


class TestRemoteHandlerErrors:
    def test_handler_exception_surfaces_as_remote_call_error(self):
        """The regression: a raising call handler used to kill the
        connection thread silently, leaving the caller to time out into
        a misleading LinkDown.  It must surface as a typed error naming
        the remote exception."""
        def handler(message):
            if message.payload == "bad":
                raise ValueError("handler rejected the request")
            return message.reply(MessageKind.SAFE_TIME_REPLY, time=9.0)

        with TcpTransport(retry_policy=FAST_RETRY) as transport:
            transport.register("a")
            transport.register("b", call_handler=handler)
            with pytest.raises(RemoteCallError) as err:
                transport.call(_msg(kind=MessageKind.SAFE_TIME_REQUEST,
                                    payload="bad"))
            assert err.value.remote_type == "ValueError"
            assert "handler rejected the request" in str(err.value)
            assert err.value.src == "a"
            assert err.value.dst == "b"
            # The link survived: the very next call succeeds over the
            # same cached connection, without burning retry budget.
            reply = transport.call(_msg(kind=MessageKind.SAFE_TIME_REQUEST,
                                        payload="good"))
            assert reply.time == 9.0


class TestCloseResetsLinkState:
    def test_close_clears_peers_batches_and_wire_counters(self):
        """The regression: close() left peers, queued batches and wire
        counters behind, so a reused transport resolved stale addresses
        and started with the wire balance already broken."""
        transport = TcpTransport(batching=True, retry_policy=FAST_RETRY)
        transport.register("a")
        transport.register("b")
        transport.set_peer("ghost", 1)          # a stale remote address
        transport.send(_msg(payload="delivered"))
        transport.flush_batches(src="a")
        _poll_until(transport, "b", 1)
        transport.send(_msg(payload="still queued"))    # never flushed
        assert transport.batcher.pending() == 1
        assert transport.wire_out > 0

        transport.close()
        assert transport._peers == {}
        assert transport.batcher.pending() == 0
        assert transport.wire_out == 0
        assert transport.wire_in == 0

        # A fresh register/send cycle on the same instance works and
        # starts its accounting from zero.
        transport.register("a")
        transport.register("b")
        transport.send(_msg(payload="second life"))
        transport.flush_batches(src="a")
        got = _poll_until(transport, "b", 1)
        assert [m.payload for m in got] == ["second life"]
        assert transport.wire_out == transport.wire_in == 1
        transport.close()


def _build_pipeline(runner, values):
    ss_a = runner.add_subsystem(runner.add_node("na"), "sa")
    ss_b = runner.add_subsystem(runner.add_node("nb"), "sb")

    def producer(comp):
        for v in values:
            yield Advance(1.0)
            yield Send("out", v)

    def consumer(comp):
        comp.got = []
        for __ in range(len(values)):
            t, v = yield Receive("in")
            comp.got.append((t, v))

    prod = FunctionComponent("prod", producer, ports={"out": "out"})
    cons = FunctionComponent("cons", consumer, ports={"in": "in"})
    ss_a.add(prod)
    ss_b.add(cons)
    channel = runner.connect(ss_a, ss_b)
    channel.split_net(ss_a.wire("w", prod.port("out")),
                      ss_b.wire("w", cons.port("in")))
    return cons


class TestLossyTcpCoSimulation:
    """The acceptance bar: a seeded plan dropping >10% of inter-node
    traffic over real sockets must not change the co-simulation's result,
    and same-seed runs must report identical fault counters."""

    VALUES = list(range(10))

    def _lossy_run(self, seed):
        with TcpTransport() as transport:
            runner = ThreadedCoSimulation(
                transport=transport,
                fault_plan=FaultPlan(seed=seed,
                                     default=LinkFaults(drop=0.15)))
            cons = _build_pipeline(runner, self.VALUES)
            runner.run(timeout=60.0)
            return list(cons.got), runner.fault_injector.summary()

    def _fault_free_run(self):
        with TcpTransport() as transport:
            runner = ThreadedCoSimulation(transport=transport)
            cons = _build_pipeline(runner, self.VALUES)
            runner.run(timeout=60.0)
            return list(cons.got)

    def test_result_matches_fault_free_run(self):
        got, counts = self._lossy_run(seed=21)
        assert got == self._fault_free_run()
        assert counts["fault.drops"] > 0
        assert counts["retry.attempts"] == counts["fault.drops"]

    def test_same_seed_runs_report_identical_counters(self):
        first_got, first_counts = self._lossy_run(seed=9)
        second_got, second_counts = self._lossy_run(seed=9)
        assert first_got == second_got
        assert first_counts == second_counts
        assert first_counts

    def test_report_surfaces_fault_counters(self):
        with TcpTransport() as transport:
            runner = ThreadedCoSimulation(
                transport=transport,
                fault_plan=FaultPlan(seed=21,
                                     default=LinkFaults(drop=0.15)))
            cons = _build_pipeline(runner, self.VALUES)
            runner.run(timeout=60.0)
            report = runner.report(title="lossy tcp")
            assert report.faults == runner.fault_injector.summary()
            assert report.faults["fault.drops"] > 0


class TestThreadedNodeCrash:
    def test_scheduled_crash_surfaces_as_typed_node_failure(self):
        """The threaded executor cannot roll back: a confirmed crash is a
        typed NodeFailure naming the node, never a hang or raw error."""
        with TcpTransport() as transport:
            runner = ThreadedCoSimulation(
                transport=transport,
                fault_plan=FaultPlan(
                    seed=0, crashes=(NodeCrash("nb", at_time=4.0),)),
                heartbeat_timeout=0.5)
            _build_pipeline(runner, list(range(10)))
            with pytest.raises(NodeFailure) as err:
                runner.run(timeout=60.0)
            assert err.value.node == "nb"

    def test_crash_of_unknown_node_rejected_up_front(self):
        from repro.core import ConfigurationError
        runner = ThreadedCoSimulation(
            fault_plan=FaultPlan(
                seed=0, crashes=(NodeCrash("ghost", at_time=1.0),)))
        _build_pipeline(runner, [1, 2])
        with pytest.raises(ConfigurationError):
            runner.run(timeout=10.0)


class TestForkSafety:
    """Sockets must never be shared across a fork/spawn boundary: the
    transport detects the PID change and quietly rebuilds itself in the
    child (fresh server sockets, no inherited cached connections)."""

    def _warm(self, transport):
        transport.register("a", lambda m: None)
        transport.register("b", lambda m: None)
        transport.send(_msg(payload="warm"))
        assert [m.payload for m in _poll_until(transport, "b", 1)] == ["warm"]

    def test_pid_change_drops_connections_and_rebinds(self):
        telemetry = Telemetry()
        with TcpTransport() as transport:
            transport.attach_telemetry(telemetry)
            self._warm(transport)
            old_conns = dict(transport._conns)
            old_endpoint = transport._endpoints["b"]
            assert old_conns, "expected a warmed cached connection"
            # An undelivered message parked in the inbox must survive.
            transport.send(_msg(payload="kept"))
            deadline = time.monotonic() + 5.0
            while not old_endpoint.inbox and time.monotonic() < deadline:
                time.sleep(0.005)
            assert old_endpoint.inbox

            transport._pid = -1    # simulate crossing a process boundary
            transport.send(_msg(payload="after"))

            counters = telemetry.registry.snapshot()["counters"]
            assert counters.get("transport.fork_resets") == 1
            assert not old_conns.keys() & transport._conns.keys() or \
                all(transport._conns[k] is not old_conns[k]
                    for k in old_conns.keys() & transport._conns.keys())
            for conn in old_conns.values():
                assert conn.sock.fileno() == -1, "inherited socket left open"
            assert transport._endpoints["b"] is not old_endpoint
            got = _poll_until(transport, "b", 2)
            assert [m.payload for m in got] == ["kept", "after"]

    def test_forked_child_gets_its_own_sockets(self):
        import os
        if not hasattr(os, "fork"):
            pytest.skip("requires os.fork")
        with TcpTransport() as transport:
            self._warm(transport)
            pid = os.fork()
            if pid == 0:
                # Child: the inherited transport must reset itself and be
                # fully usable without touching the parent's sockets.
                status = 1
                try:
                    transport.send(_msg(payload="child"))
                    got = _poll_until(transport, "b", 1)
                    if [m.payload for m in got] == ["child"] \
                            and transport._pid == os.getpid():
                        status = 0
                except BaseException:
                    pass
                finally:
                    os._exit(status)
            __, code = os.waitpid(pid, 0)
            assert os.WIFEXITED(code) and os.WEXITSTATUS(code) == 0
            # Parent: completely unaffected by the child's reset.
            transport.send(_msg(payload="parent"))
            got = _poll_until(transport, "b", 1)
            assert [m.payload for m in got] == ["parent"]
