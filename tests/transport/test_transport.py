"""Transports: FIFO order, wire simulation, accounting, latency models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, TransportError
from repro.transport import (
    INTERNET,
    LAN,
    SAME_HOST,
    InMemoryTransport,
    LatencyModel,
    Message,
    MessageKind,
    NetworkAccounting,
    TcpTransport,
    decode,
    encode,
    preset,
    wire_size,
)


def _msg(src="a", dst="b", time=1.0, payload=None, kind=MessageKind.SIGNAL):
    return Message(kind=kind, src=src, dst=dst, channel="ch", time=time,
                   payload=payload)


class TestMessage:
    def test_encode_decode_roundtrip(self):
        msg = _msg(payload=("net", b"\x00\x01", 3))
        again = decode(encode(msg))
        assert again.payload == msg.payload
        assert again.kind == msg.kind
        assert again.time == msg.time

    def test_reply_swaps_endpoints_and_keeps_request_id(self):
        msg = Message(MessageKind.SAFE_TIME_REQUEST, "a", "b",
                      request_id=42, payload=("x", "y"))
        reply = msg.reply(MessageKind.SAFE_TIME_REPLY, time=7.0)
        assert (reply.src, reply.dst) == ("b", "a")
        assert reply.request_id == 42
        assert reply.time == 7.0

    def test_wire_size_grows_with_payload(self):
        small = wire_size(_msg(payload=b"x"))
        big = wire_size(_msg(payload=b"x" * 10_000))
        assert big > small + 9_000

    def test_decode_garbage_raises(self):
        with pytest.raises(TransportError):
            decode(b"not a pickle")


class TestLatencyModels:
    def test_delay_formula(self):
        model = LatencyModel("m", latency=0.01, bandwidth=1000)
        assert model.delay(500) == pytest.approx(0.01 + 0.5)

    def test_presets(self):
        assert preset("internet") is INTERNET
        assert INTERNET.latency > LAN.latency > SAME_HOST.latency
        with pytest.raises(ConfigurationError):
            preset("carrier-pigeon")

    def test_invalid_models_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyModel("bad", latency=-1)
        with pytest.raises(ConfigurationError):
            LatencyModel("bad", latency=0, bandwidth=0)
        with pytest.raises(ConfigurationError):
            LatencyModel("bad", latency=0, jitter=1.5)

    def test_jitter_is_deterministic_and_bounded(self):
        model = LatencyModel("j", latency=0.01, jitter=0.2)
        delays = [model.delay(0, seq=i) for i in range(16)]
        assert delays[:8] == delays[8:]          # cyclic, reproducible
        for d in delays:
            assert 0.008 - 1e-12 <= d <= 0.012 + 1e-12

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30)
    def test_delay_monotone_in_size(self, size):
        model = LatencyModel("m", latency=0.001, bandwidth=1e6)
        assert model.delay(size + 1) >= model.delay(size)


class TestAccounting:
    def test_records_and_totals(self):
        acc = NetworkAccounting(SAME_HOST)
        acc.set_model("a", "b", LAN)
        acc.record("a", "b", 1000)
        acc.record("a", "b", 1000)
        acc.record("b", "c", 10)      # default model
        assert acc.total_messages == 3
        assert acc.total_bytes == 2010
        assert acc.links[("a", "b")].model is LAN
        assert acc.links[("b", "c")].model is SAME_HOST

    def test_delay_accumulates(self):
        acc = NetworkAccounting(LatencyModel("m", latency=0.5))
        acc.record("a", "b", 0)
        acc.record("a", "b", 0)
        assert acc.total_delay == pytest.approx(1.0)

    def test_report_rows_sorted(self):
        acc = NetworkAccounting(SAME_HOST)
        acc.record("b", "a", 1)
        acc.record("a", "b", 1)
        rows = acc.report()
        assert [(r[0], r[1]) for r in rows] == [("a", "b"), ("b", "a")]

    def test_reset(self):
        acc = NetworkAccounting(SAME_HOST)
        acc.record("a", "b", 5)
        acc.reset()
        assert acc.total_messages == 0


class TestInMemoryTransport:
    def test_fifo_per_link(self):
        t = InMemoryTransport()
        t.register("a")
        t.register("b")
        for i in range(10):
            t.send(_msg(payload=i))
        got = [m.payload for m in t.poll("b")]
        assert got == list(range(10))

    def test_wire_simulation_copies_payloads(self):
        t = InMemoryTransport()
        t.register("a")
        t.register("b")
        payload = {"mutable": [1, 2]}
        t.send(_msg(payload=payload))
        delivered = t.poll("b")[0].payload
        delivered["mutable"].append(3)
        assert payload["mutable"] == [1, 2]

    def test_unknown_destination(self):
        t = InMemoryTransport()
        t.register("a")
        with pytest.raises(TransportError):
            t.send(_msg(dst="ghost"))

    def test_call_roundtrip_and_accounting(self):
        t = InMemoryTransport()
        t.register("a")
        t.register("b", call_handler=lambda m: m.reply(
            MessageKind.SAFE_TIME_REPLY, time=m.time * 2))
        reply = t.call(_msg(kind=MessageKind.SAFE_TIME_REQUEST, time=21.0))
        assert reply.time == 42.0
        # both directions charged
        assert t.accounting.links[("a", "b")].messages == 1
        assert t.accounting.links[("b", "a")].messages == 1

    def test_call_without_handler_raises(self):
        t = InMemoryTransport()
        t.register("a")
        t.register("b")
        with pytest.raises(TransportError):
            t.call(_msg(kind=MessageKind.SAFE_TIME_REQUEST))

    def test_pending_flush_and_drop_if(self):
        t = InMemoryTransport()
        t.register("a")
        t.register("b")
        for i in range(4):
            t.send(_msg(payload=i))
        assert t.pending() == 4
        assert t.pending("b") == 4
        dropped = t.drop_if(lambda m: m.payload % 2 == 0)
        assert dropped == 2
        assert [m.payload for m in t.poll("b")] == [1, 3]
        t.send(_msg(payload=9))
        assert t.flush() == 1
        assert t.pending() == 0

    def test_duplicate_registration(self):
        t = InMemoryTransport()
        t.register("a")
        with pytest.raises(TransportError):
            t.register("a")

    def test_link_model_charged(self):
        t = InMemoryTransport()
        t.register("a")
        t.register("b")
        t.set_link("a", "b", INTERNET)
        delay = t.send(_msg(payload=b"x" * 1280))
        assert delay > INTERNET.latency


class TestTcpTransport:
    def test_send_and_poll_over_sockets(self):
        with TcpTransport() as t:
            t.register("a")
            t.register("b")
            t.send(_msg(payload=b"hello"))
            got = _poll_until(t, "b", 1)
            assert got[0].payload == b"hello"

    def test_fifo_over_one_connection(self):
        with TcpTransport() as t:
            t.register("a")
            t.register("b")
            for i in range(20):
                t.send(_msg(payload=i))
            got = _poll_until(t, "b", 20)
            assert [m.payload for m in got] == list(range(20))

    def test_call_roundtrip(self):
        with TcpTransport() as t:
            t.register("a")
            t.register("b", call_handler=lambda m: m.reply(
                MessageKind.SAFE_TIME_REPLY, time=m.time + 1))
            reply = t.call(_msg(kind=MessageKind.SAFE_TIME_REQUEST, time=4.0))
            assert reply.time == 5.0

    def test_unknown_destination(self):
        with TcpTransport() as t:
            t.register("a")
            with pytest.raises(TransportError):
                t.send(_msg(dst="ghost"))


def _poll_until(transport, name, count, timeout=5.0):
    import time
    collected = []
    deadline = time.monotonic() + timeout
    while len(collected) < count and time.monotonic() < deadline:
        collected.extend(transport.poll(name))
        time.sleep(0.005)
    assert len(collected) >= count, f"only {len(collected)}/{count} arrived"
    return collected
